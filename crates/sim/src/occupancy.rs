//! SM occupancy: how many thread blocks fit on one SM.
//!
//! This is where configurations C2/C3 earn their speedups: the area saved
//! by a denser STT-RAM L2 buys a larger register file, which raises the
//! block cap for register-limited kernels — more resident warps, better
//! latency hiding. The limits mirror the CUDA occupancy calculator:
//! registers, shared memory, warp slots and a hard block cap.

use crate::config::GpuConfig;
use crate::kernel::KernelParams;

/// Which resource capped a kernel's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// Register file exhausted first (C2/C3's target population).
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Warp slots exhausted first.
    WarpSlots,
    /// The architectural blocks-per-SM cap hit first.
    BlockCap,
}

/// Resident blocks/warps per SM for one kernel on one GPU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Resident thread blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// The binding resource.
    pub limit: OccupancyLimit,
}

impl Occupancy {
    /// Computes the occupancy of `kernel` on `gpu`.
    ///
    /// Returns `blocks_per_sm == 0` when even a single block does not fit
    /// (the kernel cannot launch).
    pub fn compute(gpu: &GpuConfig, kernel: &KernelParams) -> Occupancy {
        let regs_per_block = kernel.regs_per_thread * kernel.threads_per_block;
        let by_regs = gpu
            .registers_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let by_shared = gpu
            .shared_mem_per_sm
            .checked_div(kernel.shared_bytes_per_block)
            .unwrap_or(u32::MAX);
        let by_warps = gpu.max_warps_per_sm / kernel.warps_per_block();
        let by_cap = gpu.max_blocks_per_sm;

        let blocks = by_regs.min(by_shared).min(by_warps).min(by_cap);
        // Report the binding constraint (ties resolved in this order, the
        // most interesting constraint for the paper first).
        let limit = if blocks == by_regs {
            OccupancyLimit::Registers
        } else if blocks == by_shared {
            OccupancyLimit::SharedMemory
        } else if blocks == by_warps {
            OccupancyLimit::WarpSlots
        } else {
            OccupancyLimit::BlockCap
        };
        Occupancy {
            blocks_per_sm: blocks,
            warps_per_sm: blocks * kernel.warps_per_block(),
            limit,
        }
    }

    /// Occupancy as a fraction of the SM's warp slots.
    pub fn warp_occupancy(&self, gpu: &GpuConfig) -> f64 {
        self.warps_per_sm as f64 / gpu.max_warps_per_sm as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::gtx480()
    }

    #[test]
    fn register_limited_kernel() {
        // 63 regs * 256 threads = 16128 regs/block -> 2 blocks on 32 K.
        let k = KernelParams::new("k", 100, 256).with_regs_per_thread(63);
        let occ = Occupancy::compute(&gpu(), &k);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 16);
        assert_eq!(occ.limit, OccupancyLimit::Registers);
    }

    #[test]
    fn bigger_register_file_raises_occupancy() {
        let k = KernelParams::new("k", 100, 256).with_regs_per_thread(63);
        let mut big = gpu();
        big.registers_per_sm = 48 * 1024;
        let base = Occupancy::compute(&gpu(), &k);
        let boosted = Occupancy::compute(&big, &k);
        assert!(boosted.blocks_per_sm > base.blocks_per_sm);
    }

    #[test]
    fn shared_memory_limited_kernel() {
        let k = KernelParams::new("k", 10, 64)
            .with_regs_per_thread(10)
            .with_shared_bytes(16 * 1024);
        let occ = Occupancy::compute(&gpu(), &k);
        assert_eq!(occ.blocks_per_sm, 3);
        assert_eq!(occ.limit, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn warp_slot_limited_kernel() {
        // 512 threads = 16 warps/block; 48 warp slots -> 3 blocks.
        let k = KernelParams::new("k", 10, 512).with_regs_per_thread(4);
        let occ = Occupancy::compute(&gpu(), &k);
        assert_eq!(occ.blocks_per_sm, 3);
        assert_eq!(occ.warps_per_sm, 48);
        assert_eq!(occ.limit, OccupancyLimit::WarpSlots);
    }

    #[test]
    fn block_cap_limited_kernel() {
        // Tiny blocks: cap of 8 blocks binds before anything else.
        let k = KernelParams::new("k", 10, 32).with_regs_per_thread(4);
        let occ = Occupancy::compute(&gpu(), &k);
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.limit, OccupancyLimit::BlockCap);
    }

    #[test]
    fn oversized_kernel_cannot_launch() {
        let k = KernelParams::new("k", 1, 1024).with_regs_per_thread(64);
        let occ = Occupancy::compute(&gpu(), &k);
        assert_eq!(occ.blocks_per_sm, 0);
    }

    #[test]
    fn warp_occupancy_fraction() {
        let k = KernelParams::new("k", 10, 512).with_regs_per_thread(4);
        let occ = Occupancy::compute(&gpu(), &k);
        assert!((occ.warp_occupancy(&gpu()) - 1.0).abs() < 1e-12);
    }
}
