//! Warp execution state.

use crate::program::{WarpInstr, WarpProgram};

/// One resident warp's scheduler-visible state.
#[derive(Debug, Clone)]
pub struct Warp {
    /// The warp's instruction stream.
    pub program: WarpProgram,
    /// Index of the owning block in the SM's block table.
    pub block_slot: usize,
    /// Launch order within the SM (lower = older), used by GTO scheduling.
    pub age: u64,
    /// Outstanding load requests (the warp stalls at the SM's
    /// `max_pending_loads`).
    pub pending_loads: u32,
    /// Earliest cycle the warp may issue again.
    pub ready_at: u64,
    /// Whether the warp currently sits in the SM's ready queue.
    pub queued: bool,
    /// An instruction that must replay (e.g. after an MSHR-full stall).
    pub replay: Option<WarpInstr>,
}

impl Warp {
    /// Creates a warp ready to issue at cycle 0.
    pub fn new(program: WarpProgram, block_slot: usize) -> Self {
        Warp {
            program,
            block_slot,
            age: 0,
            pending_loads: 0,
            ready_at: 0,
            queued: false,
            replay: None,
        }
    }

    /// Whether the warp has issued its whole stream (it may still have
    /// loads in flight).
    pub fn stream_done(&self) -> bool {
        self.program.is_finished() && self.replay.is_none()
    }

    /// Whether the warp can retire: stream done and no loads in flight.
    pub fn can_retire(&self) -> bool {
        self.stream_done() && self.pending_loads == 0
    }

    /// Takes the next instruction to execute: a pending replay first,
    /// otherwise the next generated instruction.
    pub fn take_instr(&mut self) -> Option<WarpInstr> {
        if let Some(i) = self.replay.take() {
            return Some(i);
        }
        self.program.next_instr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelParams;
    use std::sync::Arc;

    fn warp(instrs: u32) -> Warp {
        let k = Arc::new(KernelParams::new("k", 1, 32).with_instructions(instrs));
        Warp::new(WarpProgram::new(k, 0, 0, 1, 128), 0)
    }

    #[test]
    fn fresh_warp_is_issuable() {
        let w = warp(10);
        assert!(!w.stream_done());
        assert!(!w.can_retire());
        assert_eq!(w.pending_loads, 0);
    }

    #[test]
    fn drains_to_retirement() {
        let mut w = warp(3);
        assert!(w.take_instr().is_some());
        assert!(w.take_instr().is_some());
        assert!(w.take_instr().is_some());
        assert!(w.take_instr().is_none());
        assert!(w.can_retire());
    }

    #[test]
    fn pending_loads_block_retirement() {
        let mut w = warp(1);
        let _ = w.take_instr();
        w.pending_loads = 1;
        assert!(w.stream_done());
        assert!(!w.can_retire());
        w.pending_loads = 0;
        assert!(w.can_retire());
    }

    #[test]
    fn replay_takes_priority() {
        let mut w = warp(5);
        let first = w.take_instr().expect("instruction");
        w.replay = Some(first.clone());
        assert!(!w.stream_done());
        assert_eq!(w.take_instr(), Some(first));
    }
}
