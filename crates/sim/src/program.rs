//! Synthetic warp instruction streams.
//!
//! Every warp executes a procedurally generated stream of ALU and global
//! memory instructions whose statistics come from [`KernelParams`]: the
//! memory fraction, write fraction, footprint, write-working-set skew,
//! read locality, coalescing degree and write phase. Streams are
//! deterministic in (workload seed, kernel index, block id, warp id), so
//! every simulator configuration sees the *same* access trace — the
//! experiments compare architectures, not random draws.

use std::sync::Arc;
use sttgpu_stats::Rng;

use crate::kernel::{KernelParams, WritePhase};

/// Base byte address of the local (per-thread) memory region — far above
/// any global footprint so the two spaces never alias.
pub const LOCAL_BASE: u64 = 1 << 40;

/// Inline capacity of [`AddrVec`]. Covers every coalescing factor the
/// workload suite uses; wider bursts (clamped at 32 lines) spill.
const ADDR_INLINE: usize = 8;

/// The line addresses one memory instruction touches.
///
/// Memory instructions are generated, consumed and dropped tens of
/// millions of times per simulated second, and almost all of them touch a
/// handful of coalesced lines — an inline buffer keeps that path off the
/// allocator entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrVec(AddrRepr);

#[derive(Debug, Clone, PartialEq, Eq)]
enum AddrRepr {
    Inline { len: u8, buf: [u64; ADDR_INLINE] },
    Spill(Vec<u64>),
}

impl AddrVec {
    /// An empty list sized for `n` pushes.
    pub fn with_capacity(n: usize) -> Self {
        if n <= ADDR_INLINE {
            AddrVec(AddrRepr::Inline {
                len: 0,
                buf: [0; ADDR_INLINE],
            })
        } else {
            AddrVec(AddrRepr::Spill(Vec::with_capacity(n)))
        }
    }

    /// A single-address list.
    pub fn one(addr: u64) -> Self {
        let mut v = AddrVec::with_capacity(1);
        v.push(addr);
        v
    }

    /// Appends an address, spilling to the heap if the inline buffer is
    /// full.
    pub fn push(&mut self, addr: u64) {
        match &mut self.0 {
            AddrRepr::Inline { len, buf } => {
                if (*len as usize) < ADDR_INLINE {
                    buf[*len as usize] = addr;
                    *len += 1;
                } else {
                    let mut v = buf.to_vec();
                    v.push(addr);
                    self.0 = AddrRepr::Spill(v);
                }
            }
            AddrRepr::Spill(v) => v.push(addr),
        }
    }

    /// The addresses as a slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            AddrRepr::Inline { len, buf } => &buf[..*len as usize],
            AddrRepr::Spill(v) => v,
        }
    }
}

impl std::ops::Deref for AddrVec {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a AddrVec {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u64> for AddrVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let it = iter.into_iter();
        let mut v = AddrVec::with_capacity(it.size_hint().0);
        for a in it {
            v.push(a);
        }
        v
    }
}

/// One decoded warp instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpInstr {
    /// An arithmetic instruction (register-file only).
    Alu,
    /// A global load touching the given L1-line byte addresses.
    MemRead(AddrVec),
    /// A global store touching the given L1-line byte addresses.
    MemWrite(AddrVec),
    /// A **local** (per-thread) load — write-back cached in L1.
    LocalRead(AddrVec),
    /// A **local** (per-thread) store — write-back/write-allocate in L1;
    /// dirty evictions flow to L2 later.
    LocalWrite(AddrVec),
}

/// Deterministic per-warp instruction generator.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sttgpu_sim::kernel::KernelParams;
/// use sttgpu_sim::program::{WarpInstr, WarpProgram};
///
/// let k = Arc::new(KernelParams::new("k", 4, 64).with_instructions(50));
/// let mut p = WarpProgram::new(k, 0, 0, 99, 128);
/// let mut count = 0;
/// while p.next_instr().is_some() {
///     count += 1;
/// }
/// assert_eq!(count, 50);
/// ```
#[derive(Debug, Clone)]
pub struct WarpProgram {
    params: Arc<KernelParams>,
    rng: Rng,
    issued: u32,
    stream_cursor: u64,
    local_cursor: u64,
    local_warp_id: u64,
    segment_base: u64,
    segment_len: u64,
    line_bytes: u64,
}

impl WarpProgram {
    /// Creates the instruction stream of one warp.
    ///
    /// `kernel_index` and the warp's (block, warp-in-block) coordinates
    /// seed the stream; `line_bytes` is the L1 line size used for address
    /// alignment.
    pub fn new(
        params: Arc<KernelParams>,
        block_id: u32,
        warp_in_block: u32,
        seed: u64,
        line_bytes: u32,
    ) -> Self {
        let global_warp = block_id as u64 * params.warps_per_block() as u64 + warp_in_block as u64;
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(global_warp.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let rng = Rng::new(mixed);

        // Local (per-thread) data lives in its own address region, far
        // above any global footprint, with a small per-warp frame.
        // Partition the footprint into per-warp streaming segments so
        // coalesced streaming reads behave like real strided kernels. The
        // window is capped at a fixed size so the per-SM resident stream
        // working set stays L1-sized regardless of grid scale (real
        // kernels tile their hot data the same way).
        const STREAM_WINDOW_LINES: u64 = 2;
        let total_warps = params.total_warps().max(1);
        let lines_total = (params.footprint_bytes / line_bytes as u64).max(1);
        let seg_lines = (lines_total / total_warps).clamp(1, STREAM_WINDOW_LINES);
        let offset_lines = (global_warp * seg_lines) % lines_total;
        let segment_base = params.addr_base + offset_lines * line_bytes as u64;
        let segment_len = seg_lines * line_bytes as u64;

        WarpProgram {
            params,
            rng,
            issued: 0,
            stream_cursor: 0,
            local_cursor: 0,
            local_warp_id: global_warp,
            segment_base,
            segment_len,
            line_bytes: line_bytes as u64,
        }
    }

    /// Instructions issued so far.
    pub fn issued(&self) -> u32 {
        self.issued
    }

    /// Whether the stream is exhausted.
    pub fn is_finished(&self) -> bool {
        self.issued >= self.params.instructions_per_warp
    }

    /// Fraction of the stream completed (0.0–1.0).
    pub fn progress(&self) -> f64 {
        self.issued as f64 / self.params.instructions_per_warp.max(1) as f64
    }

    fn align(&self, addr: u64) -> u64 {
        addr / self.line_bytes * self.line_bytes
    }

    fn random_line_in(&mut self, base: u64, len_bytes: u64) -> u64 {
        let lines = (len_bytes / self.line_bytes).max(1);
        base + self.rng.range_u64(0, lines) * self.line_bytes
    }

    /// Number of distinct L1 lines this memory instruction touches, drawn
    /// around the kernel's coalescing factor.
    fn sample_lines(&mut self) -> usize {
        let c = self.params.coalescing;
        let floor = c.floor();
        let n = if self.rng.chance((c - floor).clamp(0.0, 1.0)) {
            floor as usize + 1
        } else {
            floor as usize
        };
        n.clamp(1, 32)
    }

    fn gen_read(&mut self) -> AddrVec {
        let n = self.sample_lines();
        let mut addrs = AddrVec::with_capacity(n);
        if self.rng.chance(self.params.read_locality) {
            // Stream through the warp's segment: consecutive lines.
            for _ in 0..n {
                let off = self.stream_cursor % self.segment_len;
                addrs.push(self.align(self.segment_base + off));
                self.stream_cursor += self.line_bytes;
            }
        } else {
            // Random shared-data lines across the whole footprint.
            let base = self.params.addr_base;
            let len = self.params.footprint_bytes;
            for _ in 0..n {
                addrs.push(self.random_line_in(base, len));
            }
        }
        addrs
    }

    fn gen_write(&mut self) -> AddrVec {
        let n = self.sample_lines();
        let mut addrs = AddrVec::with_capacity(n);
        let wws_len = ((self.params.footprint_bytes as f64 * self.params.wws_fraction) as u64)
            .max(self.line_bytes);
        for _ in 0..n {
            if self.rng.chance(self.params.write_skew) {
                // Concentrated write-working-set traffic.
                addrs.push(self.random_line_in(self.params.addr_base, wws_len));
            } else {
                // Scattered writes across the footprint.
                addrs.push(self.random_line_in(self.params.addr_base, self.params.footprint_bytes));
            }
        }
        addrs
    }

    /// Effective probability that a memory op is a write at this point of
    /// the stream, honouring the kernel's write phase.
    fn write_probability(&self) -> f64 {
        match self.params.write_phase {
            WritePhase::Uniform => self.params.write_fraction,
            WritePhase::EndOfKernel => {
                // All write traffic compressed into the last 20 % of the
                // stream (grids write their outputs at the end, §4).
                if self.progress() < 0.8 {
                    0.0
                } else {
                    (self.params.write_fraction * 5.0).min(1.0)
                }
            }
        }
    }

    fn gen_local(&mut self) -> AddrVec {
        // A tiny per-warp spill frame, revisited round-robin: spills have
        // extreme locality.
        let frame_lines = 2u64;
        let base = LOCAL_BASE + self.local_warp_id * frame_lines * self.line_bytes;
        let off = (self.local_cursor % frame_lines) * self.line_bytes;
        self.local_cursor += 1;
        AddrVec::one(base + off)
    }

    /// Generates the next instruction, or `None` when the warp is done.
    pub fn next_instr(&mut self) -> Option<WarpInstr> {
        if self.is_finished() {
            return None;
        }
        let instr = if self.rng.chance(self.params.mem_fraction) {
            if self.params.local_fraction > 0.0 && self.rng.chance(self.params.local_fraction) {
                // Register spills: reads and rewrites of the private frame.
                if self.rng.chance(0.5) {
                    WarpInstr::LocalWrite(self.gen_local())
                } else {
                    WarpInstr::LocalRead(self.gen_local())
                }
            } else if self.rng.chance(self.write_probability()) {
                WarpInstr::MemWrite(self.gen_write())
            } else {
                WarpInstr::MemRead(self.gen_read())
            }
        } else {
            WarpInstr::Alu
        };
        // The phase decision in `write_probability` uses the pre-issue
        // position, so the count is bumped only after the draws.
        self.issued += 1;
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Arc<KernelParams> {
        Arc::new(
            KernelParams::new("k", 8, 64)
                .with_instructions(2_000)
                .with_mem_fraction(0.4)
                .with_write_fraction(0.3)
                .with_footprint_kb(256),
        )
    }

    fn collect(p: &mut WarpProgram) -> Vec<WarpInstr> {
        std::iter::from_fn(|| p.next_instr()).collect()
    }

    #[test]
    fn stream_length_matches_params() {
        let mut p = WarpProgram::new(params(), 0, 0, 1, 128);
        assert_eq!(collect(&mut p).len(), 2_000);
        assert!(p.is_finished());
        assert!(p.next_instr().is_none());
    }

    #[test]
    fn deterministic_for_same_coordinates() {
        let a = collect(&mut WarpProgram::new(params(), 3, 1, 42, 128));
        let b = collect(&mut WarpProgram::new(params(), 3, 1, 42, 128));
        assert_eq!(a, b);
    }

    #[test]
    fn different_warps_differ() {
        let a = collect(&mut WarpProgram::new(params(), 0, 0, 42, 128));
        let b = collect(&mut WarpProgram::new(params(), 0, 1, 42, 128));
        assert_ne!(a, b);
    }

    #[test]
    fn mix_approximates_fractions() {
        let instrs = collect(&mut WarpProgram::new(params(), 0, 0, 7, 128));
        let mem = instrs
            .iter()
            .filter(|i| !matches!(i, WarpInstr::Alu))
            .count() as f64;
        let writes = instrs
            .iter()
            .filter(|i| matches!(i, WarpInstr::MemWrite(_)))
            .count() as f64;
        let mem_frac = mem / instrs.len() as f64;
        let write_frac = writes / mem;
        assert!((mem_frac - 0.4).abs() < 0.05, "mem fraction {mem_frac}");
        assert!(
            (write_frac - 0.3).abs() < 0.06,
            "write fraction {write_frac}"
        );
    }

    #[test]
    fn addresses_stay_in_footprint_and_aligned() {
        let p = params();
        let fp = p.footprint_bytes;
        let mut prog = WarpProgram::new(p, 1, 1, 9, 128);
        for instr in std::iter::from_fn(|| prog.next_instr()) {
            let addrs = match &instr {
                WarpInstr::Alu => continue,
                WarpInstr::MemRead(a) | WarpInstr::MemWrite(a) => a,
                WarpInstr::LocalRead(a) | WarpInstr::LocalWrite(a) => {
                    for &addr in a {
                        assert!(addr >= LOCAL_BASE, "local address below LOCAL_BASE");
                    }
                    continue;
                }
            };
            for &a in addrs {
                assert!(a < fp, "address {a:#x} outside footprint");
                assert_eq!(a % 128, 0, "address {a:#x} not line-aligned");
            }
        }
    }

    #[test]
    fn write_skew_concentrates_writes() {
        let p = Arc::new(
            KernelParams::new("k", 4, 64)
                .with_instructions(4_000)
                .with_mem_fraction(0.5)
                .with_write_fraction(0.5)
                .with_footprint_kb(1024)
                .with_wws(0.05, 0.9),
        );
        let wws_limit = (p.footprint_bytes as f64 * 0.05) as u64;
        let mut prog = WarpProgram::new(p, 0, 0, 11, 128);
        let mut in_wws = 0usize;
        let mut total = 0usize;
        for instr in std::iter::from_fn(|| prog.next_instr()) {
            if let WarpInstr::MemWrite(addrs) = instr {
                for &a in &addrs {
                    total += 1;
                    if a < wws_limit {
                        in_wws += 1;
                    }
                }
            }
        }
        let frac = in_wws as f64 / total as f64;
        assert!(frac > 0.85, "write concentration {frac}");
    }

    #[test]
    fn end_of_kernel_phase_delays_writes() {
        let p = Arc::new(
            KernelParams::new("k", 1, 32)
                .with_instructions(1_000)
                .with_mem_fraction(0.5)
                .with_write_fraction(0.2)
                .with_write_phase(WritePhase::EndOfKernel),
        );
        let mut prog = WarpProgram::new(p, 0, 0, 5, 128);
        let instrs = collect(&mut prog);
        let first_write = instrs
            .iter()
            .position(|i| matches!(i, WarpInstr::MemWrite(_)))
            .expect("some write must occur");
        assert!(
            first_write >= 790,
            "first write at {first_write} should be in the last fifth"
        );
    }

    #[test]
    fn local_fraction_generates_private_frame_traffic() {
        let p = Arc::new(
            KernelParams::new("k", 2, 64)
                .with_instructions(2_000)
                .with_mem_fraction(0.6)
                .with_local_fraction(0.5),
        );
        let mut prog = WarpProgram::new(Arc::clone(&p), 1, 0, 5, 128);
        let mut locals = 0usize;
        let mut frame = std::collections::HashSet::new();
        let mut mems = 0usize;
        for instr in std::iter::from_fn(|| prog.next_instr()) {
            match instr {
                WarpInstr::LocalRead(a) | WarpInstr::LocalWrite(a) => {
                    locals += 1;
                    for &addr in &a {
                        assert!(addr >= LOCAL_BASE);
                        frame.insert(addr);
                    }
                }
                WarpInstr::MemRead(_) | WarpInstr::MemWrite(_) => mems += 1,
                WarpInstr::Alu => {}
            }
        }
        assert!(locals > 0, "local ops must be generated");
        // Roughly half of memory ops are local at local_fraction 0.5.
        let frac = locals as f64 / (locals + mems) as f64;
        assert!((frac - 0.5).abs() < 0.08, "local share {frac}");
        assert_eq!(frame.len(), 2, "spill frame is two lines");
    }

    #[test]
    fn different_warps_use_disjoint_local_frames() {
        let p = Arc::new(
            KernelParams::new("k", 2, 64)
                .with_instructions(500)
                .with_mem_fraction(0.8)
                .with_local_fraction(1.0),
        );
        let frame_of = |block: u32, warp: u32| {
            let mut prog = WarpProgram::new(Arc::clone(&p), block, warp, 5, 128);
            let mut frame = std::collections::BTreeSet::new();
            for instr in std::iter::from_fn(|| prog.next_instr()) {
                if let WarpInstr::LocalRead(a) | WarpInstr::LocalWrite(a) = instr {
                    frame.extend(a.iter().copied());
                }
            }
            frame
        };
        let a = frame_of(0, 0);
        let b = frame_of(0, 1);
        assert!(a.is_disjoint(&b), "frames must not alias");
    }

    #[test]
    fn coalescing_controls_lines_per_op() {
        let p = Arc::new(
            KernelParams::new("k", 1, 32)
                .with_instructions(3_000)
                .with_mem_fraction(1.0)
                .with_coalescing(4.0),
        );
        let mut prog = WarpProgram::new(p, 0, 0, 3, 128);
        let mut total_lines = 0usize;
        let mut ops = 0usize;
        for instr in std::iter::from_fn(|| prog.next_instr()) {
            match instr {
                WarpInstr::MemRead(a) | WarpInstr::MemWrite(a) => {
                    total_lines += a.len();
                    ops += 1;
                }
                WarpInstr::LocalRead(_) | WarpInstr::LocalWrite(_) | WarpInstr::Alu => {}
            }
        }
        let avg = total_lines as f64 / ops as f64;
        assert!((avg - 4.0).abs() < 0.2, "avg lines {avg}");
    }
}
