//! The top-level GPU: SMs + memory system + kernel dispatch.

use std::sync::{Arc, Mutex};

use sttgpu_core::LlcModel;
use sttgpu_trace::{Trace, TraceEvent, VecSink};

use crate::config::GpuConfig;
use crate::kernel::{GridDispatcher, KernelParams, Workload};
use crate::mem::MemSystem;
use crate::metrics::{KernelSpan, RunMetrics};
use crate::occupancy::Occupancy;
use crate::par::SmPool;
use crate::sm::{Sm, VictimWb};

/// Default seed used by [`Gpu::run`]; use [`Gpu::run_workload`] for
/// workload-specific seeds.
const DEFAULT_SEED: u64 = 0x5EED;

/// A whole simulated GPU.
///
/// # Example
///
/// ```
/// use sttgpu_sim::{Gpu, GpuConfig, KernelParams, L2ModelConfig};
///
/// let mut cfg = GpuConfig::gtx480();
/// cfg.num_sms = 2;
/// cfg.l2 = L2ModelConfig::Sram { kb: 64, ways: 8, banks: 4 };
/// let mut gpu = Gpu::new(cfg);
/// let k = KernelParams::new("k", 4, 64).with_instructions(100);
/// let m = gpu.run(&[k], 1_000_000);
/// assert!(m.finished);
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    mem: MemSystem,
    trace: Trace,
    /// Per-SM buffering sinks (present only when a trace is attached):
    /// each SM emits into its own buffer during the — possibly parallel —
    /// step phase, and the merge phase drains them into the real sink in
    /// SM-id order, so the observed stream never depends on thread count.
    sm_buffers: Vec<Arc<Mutex<VecSink>>>,
    cycle: u64,
    single_step: bool,
    /// Requested step-phase parallelism (1 = serial).
    sim_threads: usize,
    /// Lazily created worker pool backing `sim_threads > 1`.
    pool: Option<SmPool>,
    /// Merge-phase scratch, reused across cycles.
    victim_scratch: Vec<VictimWb>,
    event_scratch: Vec<TraceEvent>,
}

impl Gpu {
    /// Builds a GPU from its configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let sms = (0..cfg.num_sms).map(|i| Sm::new(&cfg, i as u32)).collect();
        let mem = MemSystem::new(&cfg);
        Gpu {
            sms,
            mem,
            trace: Trace::off(),
            sm_buffers: Vec::new(),
            cfg,
            cycle: 0,
            single_step: false,
            sim_threads: 1,
            pool: None,
            victim_scratch: Vec::new(),
            event_scratch: Vec::new(),
        }
    }

    /// Sets how many threads step the SMs each busy cycle (1 = serial).
    /// Observable behaviour (metrics, traces, artefacts) must not depend
    /// on this value — requests, dirty victims and trace events are all
    /// merged in canonical order regardless (DESIGN.md §11); the
    /// `skip_equivalence` and golden-snapshot tests sweep it.
    pub fn set_sim_threads(&mut self, threads: usize) {
        self.sim_threads = threads.max(1);
        self.pool = None;
    }

    /// Debug mode: forces the driver to advance one cycle at a time
    /// instead of jumping over provably idle spans. Observable behaviour
    /// (metrics, traces, artefacts) must not depend on this flag — the
    /// `skip_equivalence` differential tests pin that contract.
    pub fn set_single_step(&mut self, on: bool) {
        self.single_step = on;
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Attaches one trace sink observing the whole machine: the L2 and
    /// its miss tracker, every SM's launch invariants and L1 MSHRs, and
    /// the grid dispatchers of subsequent runs.
    ///
    /// Each SM gets a private buffering sink rather than the real one, so
    /// SMs stepped on worker threads never contend for (or reorder events
    /// in) the attached sink; the merge phase forwards the buffers in
    /// SM-id order every visited cycle.
    pub fn set_trace(&mut self, trace: Trace) {
        self.mem.set_trace(trace.clone());
        if trace.is_enabled() {
            self.sm_buffers = self
                .sms
                .iter()
                .map(|_| Arc::new(Mutex::new(VecSink::new())))
                .collect();
            for (sm, buf) in self.sms.iter_mut().zip(&self.sm_buffers) {
                sm.set_trace(Trace::to_sink(Arc::clone(buf)));
            }
        } else {
            self.sm_buffers.clear();
            for sm in &mut self.sms {
                sm.set_trace(Trace::off());
            }
        }
        self.trace = trace;
    }

    /// The L2 under test (for deep inspection: two-part stats, write-count
    /// matrices, rewrite-interval histograms).
    pub fn llc(&self) -> &sttgpu_core::AnyLlc {
        self.mem.llc()
    }

    /// Starts recording the verbatim LLC call stream — every probe,
    /// fill and maintain the memory system issues, in exact order.
    /// Requests are batched and applied on the coordinating thread, so
    /// the log is deterministic for any `--sim-threads` setting.
    pub fn start_llc_call_log(&mut self) {
        self.mem.start_call_log();
    }

    /// Stops recording and returns the LLC call log, or `None` when
    /// recording was never started.
    pub fn take_llc_call_log(&mut self) -> Option<Vec<sttgpu_tracefile::TraceRecord>> {
        self.mem.take_call_log()
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs a full workload (its seed makes traces reproducible).
    pub fn run_workload(&mut self, workload: &Workload, max_cycles: u64) -> RunMetrics {
        let mut m = self.run_seeded(&workload.kernels, workload.seed, max_cycles);
        m.workload = workload.name.clone();
        m
    }

    /// Runs a kernel sequence with the default seed. Convenience wrapper
    /// for by-value kernels; sweep code should build `Arc<KernelParams>`
    /// once and use [`run_seeded`](Self::run_seeded) directly.
    pub fn run(&mut self, kernels: &[KernelParams], max_cycles: u64) -> RunMetrics {
        let kernels: Vec<Arc<KernelParams>> = kernels.iter().cloned().map(Arc::new).collect();
        self.run_seeded(&kernels, DEFAULT_SEED, max_cycles)
    }

    /// Runs a kernel sequence with an explicit seed. Kernels execute in
    /// order with a global barrier (and L1 invalidation) between them.
    ///
    /// The driver is event-driven: after processing a cycle it computes
    /// the earliest cycle at which anything can change — a queued warp's
    /// `ready_at`, the memory system's next event or maintenance
    /// deadline, or a freshly freed block-launch slot — and jumps
    /// straight there, crediting the skipped span to each busy SM's
    /// `idle_cycles`. Because ticks that do work still happen at exactly
    /// the cycles the per-cycle driver would have visited, with the same
    /// machine state, every emitted time stamp and artefact byte is
    /// identical to single-stepping (see [`set_single_step`] and the
    /// `skip_equivalence` tests).
    ///
    /// [`set_single_step`]: Self::set_single_step
    pub fn run_seeded(
        &mut self,
        kernels: &[Arc<KernelParams>],
        seed: u64,
        max_cycles: u64,
    ) -> RunMetrics {
        let deadline = self.cycle + max_cycles;
        let mut finished = true;
        let mut kernels_skipped = 0;
        let mut kernel_spans = Vec::with_capacity(kernels.len());
        // Reused across every cycle of the run so the hot loop does not
        // allocate a fresh delivery vector per tick.
        let mut fills: Vec<crate::mem::FillDelivery> = Vec::new();

        'kernels: for (k_idx, kernel) in kernels.iter().enumerate() {
            let kernel_start_cycle = self.cycle;
            let kernel_start_instr: u64 = self.sms.iter().map(|s| s.instructions).sum();
            let occ = Occupancy::compute(&self.cfg, kernel);
            if occ.blocks_per_sm == 0 {
                kernels_skipped += 1;
                continue;
            }
            let kernel_seed = seed.wrapping_add(1 + k_idx as u64 * 0x10_0001);
            let mut dispatcher = GridDispatcher::new(Arc::clone(kernel));
            dispatcher.set_trace(self.trace.clone());
            let warps_per_block = kernel.warps_per_block() as usize;

            loop {
                if self.cycle >= deadline {
                    finished = false;
                    break 'kernels;
                }
                // Keep SMs fed up to the kernel's occupancy limit,
                // distributing blocks round-robin (one per SM per pass) as
                // real block schedulers do — otherwise small grids would
                // pile onto the first SMs.
                if dispatcher.remaining() > 0 {
                    'feed: loop {
                        let mut launched_any = false;
                        for sm in &mut self.sms {
                            if sm.live_blocks() < occ.blocks_per_sm
                                && sm.free_warp_slots() >= warps_per_block
                            {
                                match dispatcher.next_block() {
                                    Some(block_id) => {
                                        let launched = sm.launch_block(
                                            kernel,
                                            block_id,
                                            kernel_seed,
                                            self.cycle,
                                        );
                                        debug_assert!(launched, "capacity was checked");
                                        launched_any = true;
                                    }
                                    None => break 'feed,
                                }
                            }
                        }
                        if !launched_any {
                            break;
                        }
                    }
                }

                let now_ns = self.cfg.ns_of_cycle(self.cycle);
                self.mem.tick(now_ns, &mut fills);
                // Route fills to their SMs' inboxes; the fill's position
                // in the tick output is the global sequence number that
                // keeps dirty-victim write-backs in serial order.
                for (seq, fill) in fills.iter().enumerate() {
                    self.sms[fill.sm as usize].push_fill(seq as u64, fill.byte_addr);
                }
                // Step phase: every SM applies its fills, gates on its
                // earliest queued warp and issues — touching only its own
                // state, so the pass shards freely across the worker
                // pool. `sm_wake` is the minimum wake cycle the skip
                // logic needs below.
                let (retired, sm_wake) = self.step_sms(now_ns);
                // Merge phase (canonical order, independent of how the
                // step phase was scheduled): buffered trace events in
                // SM-id order, dirty fill victims in global fill order,
                // then each SM's recorded requests in SM-id order — the
                // exact order the serial inline driver produced.
                self.drain_sm_traces();
                self.merge_requests();
                for _ in 0..retired {
                    dispatcher.retire_block();
                }
                self.cycle += 1;

                if dispatcher.is_done() && self.sms.iter().all(Sm::is_idle) && self.mem.is_idle() {
                    break;
                }
                if self.single_step {
                    continue;
                }

                // ---- cycle skipping ----
                // A retirement this cycle may have freed launch capacity;
                // the next cycle's feed pass must then run (launch order
                // and warp `ready_at` stamps depend on it).
                if dispatcher.remaining() > 0
                    && self.sms.iter().any(|sm| {
                        sm.live_blocks() < occ.blocks_per_sm
                            && sm.free_warp_slots() >= warps_per_block
                    })
                {
                    continue;
                }
                // Otherwise nothing can happen before the earliest of:
                // a queued warp's ready cycle (`sm_wake`, collected during
                // the issue pass above), or the memory system's next
                // event/maintenance deadline. With no wake source at all
                // (deadlock until the budget runs out), jump straight to
                // the deadline — the per-cycle driver would have spun
                // idly to the same end state.
                let mut wake = sm_wake;
                if let Some(t) = self.mem.next_wake_ns() {
                    wake = wake.min(self.cfg.cycle_of_ns_ceil(t));
                }
                let target = wake.clamp(self.cycle, deadline);
                if target > self.cycle {
                    let skipped = target - self.cycle;
                    for sm in &mut self.sms {
                        sm.count_idle(skipped);
                    }
                    self.cycle = target;
                }
            }

            // Kernel barrier: L1s are invalidated between grids.
            for sm in &mut self.sms {
                sm.flush_l1();
            }
            let end_instr: u64 = self.sms.iter().map(|s| s.instructions).sum();
            kernel_spans.push(KernelSpan {
                name: kernel.name.clone(),
                cycles: self.cycle - kernel_start_cycle,
                instructions: end_instr - kernel_start_instr,
            });
        }

        let mut metrics = self.collect_metrics(finished, kernels_skipped);
        metrics.kernel_spans = kernel_spans;
        metrics
    }

    /// Steps every SM for one cycle — serially, or sharded across the
    /// worker pool when `sim_threads > 1`. Returns the total blocks
    /// retired and the minimum next wake cycle over all SMs.
    fn step_sms(&mut self, now_ns: u64) -> (u32, u64) {
        let threads = self.sim_threads.min(self.sms.len()).max(1);
        if threads <= 1 {
            let mut blocks_retired = 0;
            let mut next_wake = u64::MAX;
            for sm in &mut self.sms {
                let out = sm.step(self.cycle, now_ns);
                blocks_retired += out.blocks_retired;
                next_wake = next_wake.min(out.next_wake);
            }
            return (blocks_retired, next_wake);
        }
        if self
            .pool
            .as_ref()
            .is_none_or(|p| p.workers() != threads - 1)
        {
            self.pool = Some(SmPool::new(threads - 1));
        }
        let pool = self.pool.as_mut().expect("pool was just ensured");
        pool.step(&mut self.sms, self.cycle, now_ns)
    }

    /// Forwards each SM's buffered trace events to the attached sink, in
    /// SM-id order. Events within one SM's buffer keep their emit order,
    /// so the resulting stream is a pure function of the simulated state,
    /// never of step-phase scheduling.
    fn drain_sm_traces(&mut self) {
        for buf in &self.sm_buffers {
            buf.lock()
                .expect("per-SM trace buffer poisoned")
                .take_into(&mut self.event_scratch);
            for ev in self.event_scratch.drain(..) {
                self.trace.emit(move || ev);
            }
        }
    }

    /// Merge phase: replays this cycle's deferred memory traffic into the
    /// shared `MemSystem` in canonical order — dirty fill victims first
    /// (sorted by global fill sequence, reproducing the serial driver's
    /// per-fill write-backs), then every SM's request batch in SM-id
    /// order (reproducing the serial SM loop).
    fn merge_requests(&mut self) {
        self.victim_scratch.clear();
        for sm in &mut self.sms {
            sm.drain_victims_into(&mut self.victim_scratch);
        }
        self.victim_scratch.sort_unstable_by_key(|v| v.seq);
        for v in &self.victim_scratch {
            self.mem.write_request(v.sm, v.byte_addr, v.now_ns);
        }
        for sm in &mut self.sms {
            sm.drain_requests_into(&mut self.mem);
        }
    }

    fn collect_metrics(&self, finished: bool, kernels_skipped: u32) -> RunMetrics {
        let mut instructions = 0;
        let mut l1_read_hits = 0;
        let mut l1_read_misses = 0;
        let mut mshr_stalls = 0;
        let mut sm_idle_cycles = 0;
        for sm in &self.sms {
            instructions += sm.instructions;
            let (hits, misses, _w, _e) = sm.l1().counters();
            l1_read_hits += hits;
            l1_read_misses += misses;
            mshr_stalls += sm.mshr_stalls;
            sm_idle_cycles += sm.idle_cycles;
        }
        RunMetrics {
            workload: String::new(),
            cycles: self.cycle,
            elapsed_ns: self.cfg.ns_of_cycle(self.cycle),
            instructions,
            finished,
            kernels_skipped,
            l2: self.mem.llc().summary(),
            l2_energy: self.mem.llc().energy().clone(),
            l1_read_hits,
            l1_read_misses,
            dram_reads: self.mem.dram_reads,
            dram_writes: self.mem.dram_writes,
            dram_row_hits: self.mem.dram_row_hits,
            mshr_stalls,
            sm_idle_cycles,
            l2_read_hit_latency_ns: if self.mem.read_hit_count == 0 {
                0.0
            } else {
                self.mem.read_hit_latency_sum_ns as f64 / self.mem.read_hit_count as f64
            },
            kernel_spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2ModelConfig;
    use crate::kernel::Workload;

    fn small_cfg() -> GpuConfig {
        let mut cfg = GpuConfig::gtx480();
        cfg.num_sms = 4;
        cfg.l2 = L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 4,
        };
        cfg
    }

    fn toy_kernel() -> KernelParams {
        KernelParams::new("toy", 16, 64)
            .with_instructions(300)
            .with_mem_fraction(0.3)
            .with_write_fraction(0.2)
            .with_footprint_kb(256)
    }

    #[test]
    fn runs_to_completion() {
        let mut gpu = Gpu::new(small_cfg());
        let m = gpu.run(&[toy_kernel()], 2_000_000);
        assert!(m.finished);
        assert_eq!(m.kernels_skipped, 0);
        // 16 blocks * 2 warps * 300 instr * 32 threads.
        assert_eq!(m.instructions, 16 * 2 * 300 * 32);
        assert!(m.ipc() > 0.0);
        assert!(m.l2.accesses() > 0);
        assert!(m.dram_reads > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = Workload::new("w", vec![toy_kernel()], 99);
        let mut gpu_a = Gpu::new(small_cfg());
        let mut gpu_b = Gpu::new(small_cfg());
        let a = gpu_a.run_workload(&w, 2_000_000);
        let b = gpu_b.run_workload(&w, 2_000_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.l2.accesses(), b.l2.accesses());
        assert_eq!(a.dram_reads, b.dram_reads);
    }

    #[test]
    fn cycle_budget_respected() {
        let mut gpu = Gpu::new(small_cfg());
        let m = gpu.run(&[toy_kernel()], 500);
        assert!(!m.finished, "500 cycles cannot complete the kernel");
        assert!(m.cycles <= 501);
    }

    #[test]
    fn unlaunchable_kernel_is_skipped() {
        let mut gpu = Gpu::new(small_cfg());
        let huge = KernelParams::new("huge", 4, 1024).with_regs_per_thread(64);
        let m = gpu.run(&[huge, toy_kernel()], 2_000_000);
        assert_eq!(m.kernels_skipped, 1);
        assert!(m.finished, "the runnable kernel still completes");
        assert!(m.instructions > 0);
    }

    #[test]
    fn multi_kernel_sequence_runs_in_order() {
        let k1 = toy_kernel();
        let k2 = KernelParams::new("k2", 8, 64)
            .with_instructions(100)
            .with_mem_fraction(0.1);
        let mut gpu = Gpu::new(small_cfg());
        let m = gpu.run(&[k1, k2], 4_000_000);
        assert!(m.finished);
        let expected = 16 * 2 * 300 * 32 + 8 * 2 * 100 * 32;
        assert_eq!(m.instructions, expected);
        // Per-kernel spans partition the run.
        assert_eq!(m.kernel_spans.len(), 2);
        assert_eq!(m.kernel_spans[0].name, "toy");
        assert_eq!(m.kernel_spans[1].name, "k2");
        assert_eq!(
            m.kernel_spans.iter().map(|s| s.instructions).sum::<u64>(),
            m.instructions
        );
        assert_eq!(
            m.kernel_spans.iter().map(|s| s.cycles).sum::<u64>(),
            m.cycles
        );
        assert!(m.kernel_spans[0].ipc() > 0.0);
    }

    #[test]
    fn gto_scheduler_completes_same_work() {
        use crate::config::WarpScheduler;
        let w = Workload::new("w", vec![toy_kernel()], 5);
        let mut lrr_cfg = small_cfg();
        lrr_cfg.scheduler = WarpScheduler::LooseRoundRobin;
        let mut gto_cfg = small_cfg();
        gto_cfg.scheduler = WarpScheduler::GreedyThenOldest;
        let mut lrr = Gpu::new(lrr_cfg);
        let mut gto = Gpu::new(gto_cfg);
        let a = lrr.run_workload(&w, 4_000_000);
        let b = gto.run_workload(&w, 4_000_000);
        assert!(a.finished && b.finished);
        assert_eq!(a.instructions, b.instructions, "same trace, same work");
        assert!(b.ipc() > 0.0);
    }

    #[test]
    fn thread_count_does_not_change_metrics() {
        let w = Workload::new("w", vec![toy_kernel()], 17);
        let mut reference = Gpu::new(small_cfg());
        let a = reference.run_workload(&w, 2_000_000);
        for threads in [2, 4, 8] {
            let mut gpu = Gpu::new(small_cfg());
            gpu.set_sim_threads(threads);
            let b = gpu.run_workload(&w, 2_000_000);
            assert_eq!(a, b, "metrics diverged at sim_threads={threads}");
            assert_eq!(reference.cycle(), gpu.cycle());
        }
    }

    #[test]
    fn two_part_l2_runs_under_the_gpu() {
        use sttgpu_core::TwoPartConfig;
        let mut cfg = small_cfg();
        cfg.l2 = L2ModelConfig::TwoPart(TwoPartConfig::new(8, 2, 56, 7, 256));
        let mut gpu = Gpu::new(cfg);
        let k = toy_kernel();
        let m = gpu.run(&[k], 4_000_000);
        assert!(m.finished);
        let tp = gpu.llc().as_two_part().expect("two-part L2");
        assert!(tp.stats().demand_writes() > 0, "writes must reach the L2");
        assert_eq!(tp.stats().lr_expirations, 0, "no LR data loss");
    }

    #[test]
    fn more_sms_do_not_change_per_workload_instruction_count() {
        let w = Workload::new("w", vec![toy_kernel()], 3);
        let mut small = Gpu::new(small_cfg());
        let mut big_cfg = small_cfg();
        big_cfg.num_sms = 8;
        let mut big = Gpu::new(big_cfg);
        let a = small.run_workload(&w, 4_000_000);
        let b = big.run_workload(&w, 4_000_000);
        assert_eq!(a.instructions, b.instructions);
        // More SMs parallelise the grid; allow a small slack because the
        // doubled request rate costs some DRAM row locality.
        assert!(
            b.cycles <= a.cycles * 21 / 20,
            "more SMs cannot be materially slower ({} vs {})",
            b.cycles,
            a.cycles
        );
    }
}
