//! GPU configuration (the paper's Table 2 "baseline GPU model").

use sttgpu_core::{AnyLlc, SingleLlc, TwoPartConfig, TwoPartLlc};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::mtj::RetentionTime;

/// L1 data cache configuration (per SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity, KB (paper: 16 KB).
    pub kb: u64,
    /// Associativity (paper: 4).
    pub ways: u32,
    /// Line size, bytes (paper: 128 B).
    pub line_bytes: u32,
    /// MSHR entries (in-flight missed lines).
    pub mshr_entries: usize,
    /// Waiting requests per MSHR entry.
    pub mshr_targets: usize,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config {
            kb: 16,
            ways: 4,
            line_bytes: 128,
            mshr_entries: 128,
            mshr_targets: 16,
        }
    }
}

/// DRAM / memory-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of memory controllers (paper: 6), each with a point-to-point
    /// link to one L2 bank.
    pub controllers: u32,
    /// Access latency when the request misses the open row (precharge +
    /// activate + CAS), ns.
    pub latency_ns: u64,
    /// Access latency when the request hits the controller's open row, ns.
    pub row_hit_latency_ns: u64,
    /// DRAM row size, bytes (the open-row granularity per controller).
    pub row_bytes: u64,
    /// Per-controller service time per request, ns (bandwidth model: one
    /// 256 B L2-line transfer at ~32 GB/s per controller).
    pub service_ns: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            controllers: 6,
            latency_ns: 240,
            row_hit_latency_ns: 160,
            row_bytes: 2048,
            service_ns: 8,
        }
    }
}

/// Warp scheduling policy of an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WarpScheduler {
    /// Loose round-robin: ready warps rotate through the issue slot.
    #[default]
    LooseRoundRobin,
    /// Greedy-then-oldest (GTO): keep issuing from the same warp until it
    /// stalls, then switch to the oldest ready warp. Tends to preserve
    /// intra-warp L1 locality (cf. cache-conscious wavefront scheduling,
    /// which the paper cites).
    GreedyThenOldest,
}

/// Which L2 to build — the axis the whole evaluation sweeps.
#[derive(Debug, Clone, PartialEq)]
pub enum L2ModelConfig {
    /// Conventional SRAM L2 (the paper's baseline GPU).
    Sram {
        /// Capacity, KB.
        kb: u64,
        /// Associativity.
        ways: u32,
        /// Banks.
        banks: u32,
    },
    /// Uniform high-retention STT-RAM L2 (the paper's "STT-RAM baseline").
    SttRam {
        /// Capacity, KB.
        kb: u64,
        /// Associativity.
        ways: u32,
        /// Banks.
        banks: u32,
        /// Retention design point (the baseline uses 10 years).
        retention_years: f64,
    },
    /// The proposed two-part LR/HR L2.
    TwoPart(TwoPartConfig),
}

impl L2ModelConfig {
    /// Instantiates the configured LLC.
    pub fn build(&self, line_bytes: u32) -> AnyLlc {
        match self {
            L2ModelConfig::Sram { kb, ways, banks } => {
                SingleLlc::new(*kb, *ways, line_bytes, *banks, MemTechnology::Sram).into()
            }
            L2ModelConfig::SttRam {
                kb,
                ways,
                banks,
                retention_years,
            } => SingleLlc::new(
                *kb,
                *ways,
                line_bytes,
                *banks,
                MemTechnology::stt_for_retention(RetentionTime::from_years(*retention_years)),
            )
            .into(),
            L2ModelConfig::TwoPart(cfg) => TwoPartLlc::new(cfg.clone()).into(),
        }
    }

    /// Total L2 data capacity, KB.
    pub fn capacity_kb(&self) -> u64 {
        match self {
            L2ModelConfig::Sram { kb, .. } | L2ModelConfig::SttRam { kb, .. } => *kb,
            L2ModelConfig::TwoPart(cfg) => cfg.total_kb(),
        }
    }
}

/// Full GPU configuration.
///
/// Defaults ([`GpuConfig::gtx480`]) follow the paper's Table 2: 15 SMs,
/// 16 KB 4-way L1D with 128 B lines, 48 KB shared memory, 32 K 32-bit
/// registers per SM, 6 memory controllers, and a 384 KB 8-way SRAM L2 with
/// 256 B lines.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (paper: 15 clusters × 1 SM).
    pub num_sms: usize,
    /// Threads per warp (32 on all NVIDIA generations the paper covers).
    pub warp_size: u32,
    /// Maximum resident warps per SM (GTX480/Fermi: 48).
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM (Fermi: 8).
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM (Fermi: 32768) — enlarged in C2/C3.
    pub registers_per_sm: u32,
    /// Shared memory per SM, bytes (paper: 48 KB).
    pub shared_mem_per_sm: u32,
    /// SM clock, MHz (GTX480 shader clock: 1400).
    pub clock_mhz: u64,
    /// Instructions issued per SM per cycle.
    pub issue_width: u32,
    /// Cycles before the same warp may issue its next (dependent)
    /// instruction — models pipeline/RAW latency. An SM therefore needs
    /// about `dep_interval_cycles × issue_width` *ready* warps to stay
    /// saturated, which is what makes occupancy (and the register-file
    /// enlargements of C2/C3) matter.
    pub dep_interval_cycles: u32,
    /// Maximum outstanding load instructions per warp before it stalls.
    pub max_pending_loads: u32,
    /// Warp scheduling policy.
    pub scheduler: WarpScheduler,
    /// One-way interconnect latency between SMs and L2 banks, ns.
    pub icnt_latency_ns: u64,
    /// Per-SM interconnect port service time per packet, ns (bandwidth).
    pub icnt_flit_ns: u64,
    /// L1 data cache configuration.
    pub l1: L1Config,
    /// L2 line size, bytes (paper: 256 B).
    pub l2_line_bytes: u32,
    /// The L2 under evaluation.
    pub l2: L2ModelConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
}

impl GpuConfig {
    /// The paper's baseline GPU (GTX480-like) with its SRAM L2.
    pub fn gtx480() -> Self {
        GpuConfig {
            num_sms: 15,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            registers_per_sm: 32 * 1024,
            shared_mem_per_sm: 48 * 1024,
            clock_mhz: 1400,
            issue_width: 1,
            dep_interval_cycles: 20,
            max_pending_loads: 4,
            scheduler: WarpScheduler::default(),
            icnt_latency_ns: 10,
            icnt_flit_ns: 1,
            l1: L1Config::default(),
            l2_line_bytes: 256,
            l2: L2ModelConfig::Sram {
                kb: 384,
                ways: 8,
                banks: 6,
            },
            dram: DramConfig::default(),
        }
    }

    /// Converts a cycle count to nanoseconds of simulated time.
    pub fn ns_of_cycle(&self, cycle: u64) -> u64 {
        cycle * 1000 / self.clock_mhz
    }

    /// The first cycle whose [`ns_of_cycle`](Self::ns_of_cycle) timestamp
    /// reaches `ns` — the exact inverse the event-driven driver needs to
    /// turn a memory-event deadline back into a wake-up cycle.
    /// (`floor(c·1000/f) ≥ ns ⇔ c·1000 ≥ ns·f` for integer `ns`, so the
    /// ceiling division is exact, not an approximation.)
    pub fn cycle_of_ns_ceil(&self, ns: u64) -> u64 {
        ns.saturating_mul(self.clock_mhz).div_ceil(1000)
    }

    /// Peak thread-instructions per cycle (the IPC ceiling).
    pub fn peak_ipc(&self) -> f64 {
        (self.num_sms as u32 * self.issue_width * self.warp_size) as f64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttgpu_core::LlcModel;

    #[test]
    fn gtx480_matches_table2() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.l1.kb, 16);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.line_bytes, 128);
        assert_eq!(c.shared_mem_per_sm, 48 * 1024);
        assert_eq!(c.dram.controllers, 6);
        assert_eq!(c.l2_line_bytes, 256);
        assert_eq!(c.l2.capacity_kb(), 384);
    }

    #[test]
    fn cycle_to_ns_at_1400mhz() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.ns_of_cycle(0), 0);
        assert_eq!(c.ns_of_cycle(1400), 1000);
        assert_eq!(c.ns_of_cycle(7), 5);
    }

    #[test]
    fn l2_choices_build() {
        let sram = L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 2,
        }
        .build(256);
        assert_eq!(sram.line_bytes(), 256);
        let stt = L2ModelConfig::SttRam {
            kb: 256,
            ways: 8,
            banks: 2,
            retention_years: 10.0,
        }
        .build(256);
        assert_eq!(stt.line_bytes(), 256);
        let tp = L2ModelConfig::TwoPart(TwoPartConfig::new(8, 2, 56, 7, 256)).build(256);
        assert!(tp.as_two_part().is_some());
        assert_eq!(tp.line_bytes(), 256);
        assert_eq!(
            L2ModelConfig::TwoPart(TwoPartConfig::new(8, 2, 56, 7, 256)).capacity_kb(),
            64
        );
    }

    #[test]
    fn peak_ipc() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.peak_ipc(), 480.0);
    }
}
