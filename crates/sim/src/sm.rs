//! Streaming multiprocessor: warp scheduling and instruction issue.
//!
//! Each cycle the SM issues up to `issue_width` instructions from ready
//! warps (loose round-robin). Warps stall when they exceed the outstanding
//! -load limit and wake when fill responses arrive — interleaving many
//! resident warps is how the GPU hides memory latency, and why occupancy
//! (hence register-file size, hence configurations C2/C3) matters.

use std::sync::Arc;

use std::collections::VecDeque;

use sttgpu_trace::{Trace, TraceEvent};

use crate::config::{GpuConfig, WarpScheduler};
use crate::kernel::KernelParams;
use crate::l1::{L1Cache, L1ReadOutcome};
use crate::mem::MemSystem;
use crate::program::{WarpInstr, WarpProgram};
use crate::warp::Warp;

/// Replay delay after an MSHR-full stall, cycles.
const MSHR_RETRY_CYCLES: u64 = 8;

/// One memory request an SM issued during a cycle, recorded instead of
/// applied. `now_ns` is the issue timestamp; replaying the batch through
/// [`RequestBatch::drain_into`] reproduces the inline
/// `read_request`/`write_request` calls exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchedRequest {
    byte_addr: u64,
    now_ns: u64,
    write: bool,
}

/// A per-SM accumulator of one cycle's memory requests.
///
/// This is the decoupling boundary that makes the per-cycle SM loop
/// embarrassingly parallel: [`Sm::step`] never touches the shared
/// `MemSystem`; it records requests here (in issue order) and the driver
/// later drains every SM's batch in canonical SM-id order. Replaying a
/// batch is byte-equivalent to the old inline calls because `MemSystem`
/// request entry points return nothing the SM could have observed.
#[derive(Debug, Default)]
pub struct RequestBatch {
    ops: Vec<BatchedRequest>,
}

impl RequestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RequestBatch::default()
    }

    /// Records a read issued at `now_ns`.
    pub fn push_read(&mut self, byte_addr: u64, now_ns: u64) {
        self.ops.push(BatchedRequest {
            byte_addr,
            now_ns,
            write: false,
        });
    }

    /// Records a write issued at `now_ns`.
    pub fn push_write(&mut self, byte_addr: u64, now_ns: u64) {
        self.ops.push(BatchedRequest {
            byte_addr,
            now_ns,
            write: true,
        });
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the batch into `mem` as SM `sm`, in issue order, leaving
    /// the batch empty with its capacity intact for the next cycle.
    pub fn drain_into(&mut self, sm: u32, mem: &mut MemSystem) {
        for op in self.ops.drain(..) {
            if op.write {
                mem.write_request(sm, op.byte_addr, op.now_ns);
            } else {
                mem.read_request(sm, op.byte_addr, op.now_ns);
            }
        }
    }
}

/// A dirty L1 victim displaced by a fill, waiting for the merge phase.
///
/// `seq` is the victim's global fill index within the tick (the position
/// of the fill that displaced it in `MemSystem::tick`'s output), which is
/// exactly the order the serial driver used to write victims back in —
/// sorting by `seq` restores it regardless of which thread produced the
/// victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimWb {
    /// Global fill index within the tick that displaced this line.
    pub seq: u64,
    /// Owning SM id.
    pub sm: u32,
    /// Victim line address.
    pub byte_addr: u64,
    /// Timestamp of the displacing fill.
    pub now_ns: u64,
}

/// What one [`Sm::step`] call produced, for the driver to aggregate.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Thread blocks that retired this cycle (fills + issue).
    pub blocks_retired: u32,
    /// Earliest cycle any queued warp can issue (`u64::MAX` when none).
    pub next_wake: u64,
}

/// One ready-queue entry. `ready_at` and `age` are copied out of the warp
/// at enqueue time — both are immutable while the warp sits in the queue —
/// so scheduler scans stay inside the deque's contiguous storage instead
/// of chasing `warps[slot]` for every element.
#[derive(Debug, Clone, Copy)]
struct ReadyEntry {
    slot: u32,
    ready_at: u64,
    age: u64,
}

/// One fill delivery parked in an SM's inbox until its next step.
#[derive(Debug, Clone, Copy)]
struct PendingFill {
    /// Global fill index within the tick (victim ordering key).
    seq: u64,
    byte_addr: u64,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: u32,
    warps: Vec<Option<Warp>>,
    ready: VecDeque<ReadyEntry>,
    /// Exact earliest `ready_at` over all queued warps (`u64::MAX` when
    /// none is queued). Maintained incrementally: enqueues lower it in
    /// O(1); [`cycle`](Sm::cycle) recomputes it once per call with a
    /// single scan of `ready` after its dequeues — never per issue slot,
    /// and never from the gate-side reader.
    next_ready: u64,
    /// Live warps per resident block slot (0 = slot free).
    blocks: Vec<u32>,
    /// Live warp count (cached; `warps` holds exactly this many `Some`s).
    warps_live: u32,
    /// Live block count (cached; `blocks` holds this many nonzero slots).
    blocks_live: u32,
    l1: L1Cache,
    issue_width: u32,
    dep_interval: u64,
    max_pending: u32,
    warp_size: u32,
    scheduler: WarpScheduler,
    trace: Trace,
    /// The warp GTO keeps issuing from until it stalls.
    greedy: Option<usize>,
    /// Whether the greedy warp is currently queued. A queued greedy warp
    /// is *parked* outside `ready` (see [`enqueue`](Sm::enqueue)), which
    /// makes the GTO fast path O(1) instead of a deque scan.
    greedy_parked: bool,
    /// Monotone launch counter assigning warp ages.
    age_counter: u64,
    /// This cycle's recorded memory requests (drained by the merge phase).
    batch: RequestBatch,
    /// Fill deliveries routed here by the driver before [`step`](Sm::step).
    inbox: Vec<PendingFill>,
    /// Dirty L1 victims displaced by this cycle's fills (drained by the
    /// merge phase, ordered globally by [`VictimWb::seq`]).
    victims: Vec<VictimWb>,
    /// Thread instructions committed.
    pub instructions: u64,
    /// Cycles with no issuable warp.
    pub idle_cycles: u64,
    /// Instruction replays due to full L1 MSHRs.
    pub mshr_stalls: u64,
}

impl Sm {
    /// Creates an empty SM.
    pub fn new(cfg: &GpuConfig, id: u32) -> Self {
        Sm {
            id,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            ready: VecDeque::new(),
            next_ready: u64::MAX,
            blocks: Vec::new(),
            warps_live: 0,
            blocks_live: 0,
            l1: L1Cache::new(&cfg.l1),
            issue_width: cfg.issue_width,
            dep_interval: cfg.dep_interval_cycles as u64,
            max_pending: cfg.max_pending_loads,
            warp_size: cfg.warp_size,
            scheduler: cfg.scheduler,
            trace: Trace::off(),
            greedy: None,
            greedy_parked: false,
            age_counter: 0,
            batch: RequestBatch::new(),
            inbox: Vec::new(),
            victims: Vec::new(),
            instructions: 0,
            idle_cycles: 0,
            mshr_stalls: 0,
        }
    }

    /// This SM's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Free warp contexts.
    pub fn free_warp_slots(&self) -> usize {
        self.warps.len() - self.warps_live as usize
    }

    /// Live warps.
    pub fn live_warps(&self) -> usize {
        self.warps_live as usize
    }

    /// Live blocks.
    pub fn live_blocks(&self) -> u32 {
        self.blocks_live
    }

    /// Whether nothing is resident.
    pub fn is_idle(&self) -> bool {
        self.warps_live == 0
    }

    /// The SM's L1 data cache (for statistics).
    pub fn l1(&self) -> &L1Cache {
        &self.l1
    }

    /// Attaches a trace sink observing this SM's launch invariants and
    /// its L1 MSHR table.
    pub fn set_trace(&mut self, trace: Trace) {
        self.l1.set_trace(trace.clone(), 1 + self.id);
        self.trace = trace;
    }

    /// Invalidates the L1 (kernel boundary — GPU L1s hold no dirty global
    /// data, so this is traffic-free).
    pub fn flush_l1(&mut self) {
        self.l1.invalidate_all();
    }

    /// Launches one thread block; returns `false` when warp contexts are
    /// insufficient.
    pub fn launch_block(
        &mut self,
        kernel: &Arc<KernelParams>,
        block_id: u32,
        seed: u64,
        cycle: u64,
    ) -> bool {
        let needed = kernel.warps_per_block() as usize;
        if self.free_warp_slots() < needed {
            return false;
        }
        // Claim or reuse a block slot.
        let block_slot = match self.blocks.iter().position(|&c| c == 0) {
            Some(i) => {
                self.blocks[i] = needed as u32;
                i
            }
            None => {
                self.blocks.push(needed as u32);
                self.blocks.len() - 1
            }
        };
        self.blocks_live += 1;
        let mut placed = 0u32;
        for slot in 0..self.warps.len() {
            if placed == needed as u32 {
                break;
            }
            if self.warps[slot].is_none() {
                let program = WarpProgram::new(
                    Arc::clone(kernel),
                    block_id,
                    placed,
                    seed,
                    self.l1.line_bytes(),
                );
                let mut warp = Warp::new(program, block_slot);
                warp.age = self.age_counter;
                self.age_counter += 1;
                warp.ready_at = cycle;
                warp.queued = true;
                self.warps[slot] = Some(warp);
                self.warps_live += 1;
                self.enqueue(slot);
                placed += 1;
            }
        }
        if placed != needed as u32 {
            // The free-slot check above should make this unreachable; the
            // checker reports it instead of silently under-launching.
            self.trace.emit(|| TraceEvent::LaunchUnderfill {
                sm: self.id,
                placed,
                needed: needed as u32,
            });
            debug_assert_eq!(placed, needed as u32);
        }
        true
    }

    /// Retires `slot`'s warp; returns `true` when its whole block retired.
    fn retire_warp(&mut self, slot: usize) -> bool {
        let warp = self.warps[slot].take().expect("retiring a live warp");
        self.warps_live -= 1;
        let left = &mut self.blocks[warp.block_slot];
        *left -= 1;
        if *left == 0 {
            self.blocks_live -= 1;
            true
        } else {
            false
        }
    }

    /// Queues `slot`'s (live, `queued`) warp for issue and records its
    /// `ready_at` in the wake heap. The greedy warp parks outside `ready`
    /// so GTO's fast path need not scan the deque for it.
    fn enqueue(&mut self, slot: usize) {
        let warp = self.warps[slot].as_ref().expect("enqueueing a live warp");
        let (ready_at, age) = (warp.ready_at, warp.age);
        self.next_ready = self.next_ready.min(ready_at);
        if self.greedy == Some(slot) {
            self.greedy_parked = true;
        } else {
            self.ready.push_back(ReadyEntry {
                slot: slot as u32,
                ready_at,
                age,
            });
        }
    }

    /// Earliest cycle at which any queued warp can issue, or `None` when
    /// none is queued (the SM is empty or every warp is blocked on
    /// memory). O(1): reads the incrementally maintained minimum.
    pub fn next_ready_cycle(&self) -> Option<u64> {
        (self.next_ready != u64::MAX).then_some(self.next_ready)
    }

    /// Recomputes [`next_ready`](Sm::next_ready) from scratch: the queued
    /// set is exactly `ready`'s entries plus the parked greedy warp, and
    /// entry `ready_at`s are authoritative while a warp is queued.
    fn recompute_next_ready(&mut self) {
        let (a, b) = self.ready.as_slices();
        let mut min = u64::MAX;
        for e in a.iter().chain(b.iter()) {
            min = min.min(e.ready_at);
        }
        if self.greedy_parked {
            let g = self.greedy.expect("parked implies a greedy slot");
            let w = self.warps[g].as_ref().expect("parked warp is live");
            min = min.min(w.ready_at);
        }
        self.next_ready = min;
    }

    /// Records `n` cycles in which this SM had live warps but could not
    /// issue — exactly the accounting [`cycle`](Sm::cycle) would have
    /// produced had it been called once per skipped cycle.
    pub fn count_idle(&mut self, n: u64) {
        if self.warps_live > 0 {
            self.idle_cycles += n;
        }
    }

    /// Parks one fill delivery in the inbox; [`step`](Sm::step) applies it.
    pub fn push_fill(&mut self, seq: u64, byte_addr: u64) {
        self.inbox.push(PendingFill { seq, byte_addr });
    }

    /// Runs this SM for one cycle without touching the shared memory
    /// system: applies parked fills, then gates and issues exactly as the
    /// serial driver did. Requests land in the [`RequestBatch`] and dirty
    /// fill victims in the victim list; the driver drains both in the
    /// merge phase. Safe to call from a worker thread.
    pub fn step(&mut self, cycle: u64, now_ns: u64) -> StepOutcome {
        let mut blocks_retired = 0;
        for i in 0..self.inbox.len() {
            let fill = self.inbox[i];
            blocks_retired += self.apply_fill(fill.seq, fill.byte_addr, now_ns);
        }
        self.inbox.clear();
        match self.next_ready_cycle() {
            Some(ready) if ready <= cycle => {
                blocks_retired += self.issue_cycle(cycle, now_ns);
            }
            _ => self.count_idle(1),
        }
        StepOutcome {
            blocks_retired,
            next_wake: self.next_ready,
        }
    }

    /// Moves this cycle's dirty fill victims onto `out` (capacity kept).
    pub fn drain_victims_into(&mut self, out: &mut Vec<VictimWb>) {
        out.append(&mut self.victims);
    }

    /// Replays this cycle's recorded memory requests into `mem`, in issue
    /// order. Called by the merge phase in canonical SM-id order.
    pub fn drain_requests_into(&mut self, mem: &mut MemSystem) {
        self.batch.drain_into(self.id, mem);
    }

    /// Applies an L1 fill response, waking warps. Returns the number of
    /// blocks that retired as a result.
    fn apply_fill(&mut self, seq: u64, byte_addr: u64, now_ns: u64) -> u32 {
        let (tokens, dirty_victim) = self.l1.fill(byte_addr, now_ns);
        if let Some(victim_addr) = dirty_victim {
            self.victims.push(VictimWb {
                seq,
                sm: self.id,
                byte_addr: victim_addr,
                now_ns,
            });
        }
        let mut blocks_retired = 0;
        for token in tokens {
            let slot = token as usize;
            let Some(warp) = self.warps[slot].as_mut() else {
                continue;
            };
            warp.pending_loads = warp.pending_loads.saturating_sub(1);
            if warp.queued {
                continue;
            }
            if warp.can_retire() {
                if self.retire_warp(slot) {
                    blocks_retired += 1;
                }
            } else if warp.pending_loads < self.max_pending && !warp.stream_done() {
                warp.queued = true;
                self.enqueue(slot);
            }
        }
        blocks_retired
    }

    /// Executes one instruction's memory reads. Returns `(misses_issued,
    /// true)` on success or `(partial, false)` on an MSHR-full abort.
    fn issue_reads(&mut self, slot: usize, addrs: &[u64], now_ns: u64) -> (u32, bool) {
        let mut misses = 0;
        for &addr in addrs {
            match self.l1.read(addr, slot as u64, now_ns) {
                L1ReadOutcome::Hit => {}
                L1ReadOutcome::MissIssued => {
                    self.batch.push_read(addr, now_ns);
                    misses += 1;
                }
                L1ReadOutcome::MissMerged => {
                    misses += 1;
                }
                L1ReadOutcome::MshrFull => {
                    return (misses, false);
                }
            }
        }
        (misses, true)
    }

    /// Removes and returns the next issuable warp slot per the scheduling
    /// policy, or `None` if no queued warp can issue this cycle.
    fn pop_issuable(&mut self, cycle: u64) -> Option<usize> {
        match self.scheduler {
            WarpScheduler::LooseRoundRobin => {
                // The first issuable warp in rotation order wins and the
                // not-ready prefix rotates to the back — exactly what a
                // pop/check/push-back loop does, but as one contiguous
                // scan plus one bulk rotate.
                let (a, b) = self.ready.as_slices();
                let pos = match a.iter().position(|e| e.ready_at <= cycle) {
                    Some(i) => Some(i),
                    None => b
                        .iter()
                        .position(|e| e.ready_at <= cycle)
                        .map(|i| a.len() + i),
                };
                let pos = pos?;
                self.ready.rotate_left(pos);
                let entry = self.ready.pop_front().expect("found above");
                Some(entry.slot as usize)
            }
            WarpScheduler::GreedyThenOldest => {
                // Stick with the greedy warp while it can issue. It parks
                // outside `ready` (see `enqueue`), so this is O(1) rather
                // than a position scan of the deque.
                if self.greedy_parked {
                    let g = self.greedy.expect("parked implies a greedy slot");
                    let ready = self.warps[g].as_ref().is_some_and(|w| w.ready_at <= cycle);
                    if ready {
                        self.greedy_parked = false;
                        return Some(g);
                    }
                }
                // ...otherwise the oldest ready warp becomes greedy. Ages
                // are unique, so the minimum is order-independent and the
                // O(1) swap_remove_back cannot change the schedule.
                let best = self
                    .ready
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.ready_at <= cycle)
                    .min_by_key(|(_, e)| e.age)
                    .map(|(idx, _)| idx)?;
                let entry = self.ready.swap_remove_back(best).expect("index valid");
                if self.greedy_parked {
                    // The stalled ex-greedy warp rejoins the rotation.
                    let g = self.greedy.expect("parked implies a greedy slot");
                    let w = self.warps[g].as_ref().expect("parked warp is live");
                    let (ready_at, age) = (w.ready_at, w.age);
                    self.ready.push_back(ReadyEntry {
                        slot: g as u32,
                        ready_at,
                        age,
                    });
                    self.greedy_parked = false;
                }
                self.greedy = Some(entry.slot as usize);
                Some(entry.slot as usize)
            }
        }
    }

    /// Runs one cycle of issue. Returns the number of blocks retired.
    fn issue_cycle(&mut self, cycle: u64, now_ns: u64) -> u32 {
        let mut blocks_retired = 0;
        let mut issued = 0u32;
        let mut issued_any = false;
        let mut exhausted = false;

        while issued < self.issue_width {
            let Some(slot) = self.pop_issuable(cycle) else {
                exhausted = true;
                break;
            };
            let warp = self.warps[slot].as_mut().expect("queued warp is live");

            let Some(instr) = warp.take_instr() else {
                // Stream exhausted: retire or wait for loads to drain.
                warp.queued = false;
                if warp.can_retire() && self.retire_warp(slot) {
                    blocks_retired += 1;
                }
                continue;
            };

            issued += 1;
            issued_any = true;
            match instr {
                WarpInstr::Alu => {
                    self.instructions += self.warp_size as u64;
                    let dep = self.dep_interval;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.ready_at = cycle + dep;
                    self.enqueue(slot);
                }
                WarpInstr::MemWrite(addrs) => {
                    for &addr in &addrs {
                        self.l1.write(addr, now_ns);
                        self.batch.push_write(addr, now_ns);
                    }
                    self.instructions += self.warp_size as u64;
                    let dep = self.dep_interval;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.ready_at = cycle + dep;
                    self.enqueue(slot);
                }
                WarpInstr::LocalWrite(addrs) => {
                    // Write-back/write-allocate (paper Fig. 1-b): the write
                    // stays in L1; only displaced dirty lines reach L2.
                    for &addr in &addrs {
                        if let Some(victim) = self.l1.write_local(addr, now_ns) {
                            self.batch.push_write(victim, now_ns);
                        }
                    }
                    self.instructions += self.warp_size as u64;
                    let dep = self.dep_interval;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.ready_at = cycle + dep;
                    self.enqueue(slot);
                }
                WarpInstr::MemRead(addrs) | WarpInstr::LocalRead(addrs) => {
                    let (misses, ok) = self.issue_reads(slot, &addrs, now_ns);
                    let max_pending = self.max_pending;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.pending_loads += misses;
                    if !ok {
                        // MSHR full: replay the whole instruction later.
                        self.mshr_stalls += 1;
                        warp.replay = Some(WarpInstr::MemRead(addrs));
                        warp.ready_at = cycle + MSHR_RETRY_CYCLES;
                        self.enqueue(slot);
                        continue;
                    }
                    self.instructions += self.warp_size as u64;
                    if warp.pending_loads >= max_pending {
                        // Stalled: wakes via deliver_fill.
                        warp.queued = false;
                    } else if warp.stream_done() {
                        warp.queued = false;
                        if warp.can_retire() && self.retire_warp(slot) {
                            blocks_retired += 1;
                        }
                    } else {
                        warp.ready_at = cycle + self.dep_interval;
                        self.enqueue(slot);
                    }
                }
            }
        }

        // `next_ready` is a lower bound (pops only raise the true minimum;
        // enqueues fold in via `min`). A stale-low bound merely costs one
        // futile `cycle` call whose idle accounting matches `count_idle`,
        // so the exact value is only restored — with one scan — when the
        // queue proved empty of issuable warps, which is precisely when
        // the driver needs it to compute a skip.
        if exhausted {
            self.recompute_next_ready();
        }

        if !issued_any && !self.is_idle() {
            self.idle_cycles += 1;
        }
        blocks_retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GpuConfig, L2ModelConfig};
    use sttgpu_core::LlcModel;

    fn setup(kernel: KernelParams) -> (Sm, MemSystem, Arc<KernelParams>) {
        let mut cfg = GpuConfig::gtx480();
        cfg.l2 = L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 2,
        };
        (Sm::new(&cfg, 0), MemSystem::new(&cfg), Arc::new(kernel))
    }

    /// Runs the SM until idle, delivering memory responses through the
    /// same batch/inbox/merge protocol the `Gpu` driver uses.
    fn run_to_completion(sm: &mut Sm, mem: &mut MemSystem, max_cycles: u64) -> u32 {
        let mut retired = 0;
        let mut fills = Vec::new();
        let mut victims = Vec::new();
        for cycle in 0..max_cycles {
            let now_ns = cycle * 5 / 7;
            mem.tick(now_ns, &mut fills);
            for (seq, fill) in fills.iter().enumerate() {
                sm.push_fill(seq as u64, fill.byte_addr);
            }
            retired += sm.step(cycle, now_ns).blocks_retired;
            victims.clear();
            sm.drain_victims_into(&mut victims);
            victims.sort_unstable_by_key(|v| v.seq);
            for v in &victims {
                mem.write_request(v.sm, v.byte_addr, v.now_ns);
            }
            sm.drain_requests_into(mem);
            if sm.is_idle() && mem.is_idle() {
                return retired;
            }
        }
        panic!("SM did not drain in {max_cycles} cycles");
    }

    #[test]
    fn launch_and_drain_alu_only_block() {
        let k = KernelParams::new("k", 1, 64)
            .with_instructions(100)
            .with_mem_fraction(0.0);
        let (mut sm, mut mem, k) = setup(k);
        assert!(sm.launch_block(&k, 0, 1, 0));
        assert_eq!(sm.live_warps(), 2);
        let retired = run_to_completion(&mut sm, &mut mem, 10_000);
        assert_eq!(retired, 1);
        assert!(sm.is_idle());
        // 2 warps * 100 instr * 32 threads.
        assert_eq!(sm.instructions, 6_400);
    }

    #[test]
    fn memory_kernel_completes_with_l2_traffic() {
        let k = KernelParams::new("k", 1, 64)
            .with_instructions(300)
            .with_mem_fraction(0.5)
            .with_write_fraction(0.2)
            .with_footprint_kb(128);
        let (mut sm, mut mem, k) = setup(k);
        sm.launch_block(&k, 0, 2, 0);
        run_to_completion(&mut sm, &mut mem, 2_000_000);
        assert!(mem.llc().summary().accesses() > 0, "L2 must see traffic");
        assert!(mem.dram_reads > 0, "cold misses must reach DRAM");
    }

    #[test]
    fn capacity_respected() {
        let k = KernelParams::new("k", 4, 32 * 48); // 48 warps per block
        let (mut sm, _mem, k) = setup(k);
        assert!(sm.launch_block(&k, 0, 1, 0));
        assert_eq!(sm.free_warp_slots(), 0);
        assert!(!sm.launch_block(&k, 1, 1, 0), "no contexts left");
    }

    #[test]
    fn multiple_blocks_share_the_sm() {
        let k = KernelParams::new("k", 2, 64)
            .with_instructions(50)
            .with_mem_fraction(0.0);
        let (mut sm, mut mem, k) = setup(k);
        assert!(sm.launch_block(&k, 0, 1, 0));
        assert!(sm.launch_block(&k, 1, 1, 0));
        assert_eq!(sm.live_blocks(), 2);
        let retired = run_to_completion(&mut sm, &mut mem, 100_000);
        assert_eq!(retired, 2);
    }

    #[test]
    fn block_slot_reuse_after_retirement() {
        let k = KernelParams::new("k", 3, 64)
            .with_instructions(10)
            .with_mem_fraction(0.0);
        let (mut sm, mut mem, k) = setup(k);
        sm.launch_block(&k, 0, 1, 0);
        run_to_completion(&mut sm, &mut mem, 10_000);
        assert!(sm.launch_block(&k, 1, 1, 0), "slots must be reusable");
        assert_eq!(sm.live_blocks(), 1);
    }

    #[test]
    fn idle_cycles_counted_when_warps_stall() {
        // One warp, pure loads over a big footprint: it will stall on
        // DRAM and the SM will idle.
        let k = KernelParams::new("k", 1, 32)
            .with_instructions(50)
            .with_mem_fraction(1.0)
            .with_write_fraction(0.0)
            .with_read_locality(0.0)
            .with_footprint_kb(4 * 1024);
        let (mut sm, mut mem, k) = setup(k);
        sm.launch_block(&k, 0, 3, 0);
        run_to_completion(&mut sm, &mut mem, 2_000_000);
        assert!(sm.idle_cycles > 0, "a single warp cannot hide DRAM latency");
    }
}
