//! Streaming multiprocessor: warp scheduling and instruction issue.
//!
//! Each cycle the SM issues up to `issue_width` instructions from ready
//! warps (loose round-robin). Warps stall when they exceed the outstanding
//! -load limit and wake when fill responses arrive — interleaving many
//! resident warps is how the GPU hides memory latency, and why occupancy
//! (hence register-file size, hence configurations C2/C3) matters.

use std::sync::Arc;

use std::collections::VecDeque;

use sttgpu_trace::{Trace, TraceEvent};

use crate::config::{GpuConfig, WarpScheduler};
use crate::kernel::KernelParams;
use crate::l1::{L1Cache, L1ReadOutcome};
use crate::mem::MemSystem;
use crate::program::{WarpInstr, WarpProgram};
use crate::warp::Warp;

/// Replay delay after an MSHR-full stall, cycles.
const MSHR_RETRY_CYCLES: u64 = 8;

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: u32,
    warps: Vec<Option<Warp>>,
    ready: VecDeque<usize>,
    /// Live warps per resident block slot (0 = slot free).
    blocks: Vec<u32>,
    l1: L1Cache,
    issue_width: u32,
    dep_interval: u64,
    max_pending: u32,
    warp_size: u32,
    scheduler: WarpScheduler,
    trace: Trace,
    /// The warp GTO keeps issuing from until it stalls.
    greedy: Option<usize>,
    /// Monotone launch counter assigning warp ages.
    age_counter: u64,
    /// Thread instructions committed.
    pub instructions: u64,
    /// Cycles with no issuable warp.
    pub idle_cycles: u64,
    /// Instruction replays due to full L1 MSHRs.
    pub mshr_stalls: u64,
}

impl Sm {
    /// Creates an empty SM.
    pub fn new(cfg: &GpuConfig, id: u32) -> Self {
        Sm {
            id,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            ready: VecDeque::new(),
            blocks: Vec::new(),
            l1: L1Cache::new(&cfg.l1),
            issue_width: cfg.issue_width,
            dep_interval: cfg.dep_interval_cycles as u64,
            max_pending: cfg.max_pending_loads,
            warp_size: cfg.warp_size,
            scheduler: cfg.scheduler,
            trace: Trace::off(),
            greedy: None,
            age_counter: 0,
            instructions: 0,
            idle_cycles: 0,
            mshr_stalls: 0,
        }
    }

    /// This SM's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Free warp contexts.
    pub fn free_warp_slots(&self) -> usize {
        self.warps.iter().filter(|w| w.is_none()).count()
    }

    /// Live warps.
    pub fn live_warps(&self) -> usize {
        self.warps.iter().filter(|w| w.is_some()).count()
    }

    /// Live blocks.
    pub fn live_blocks(&self) -> u32 {
        self.blocks.iter().filter(|&&c| c > 0).count() as u32
    }

    /// Whether nothing is resident.
    pub fn is_idle(&self) -> bool {
        self.live_warps() == 0
    }

    /// The SM's L1 data cache (for statistics).
    pub fn l1(&self) -> &L1Cache {
        &self.l1
    }

    /// Attaches a trace sink observing this SM's launch invariants and
    /// its L1 MSHR table.
    pub fn set_trace(&mut self, trace: Trace) {
        self.l1.set_trace(trace.clone(), 1 + self.id);
        self.trace = trace;
    }

    /// Invalidates the L1 (kernel boundary — GPU L1s hold no dirty global
    /// data, so this is traffic-free).
    pub fn flush_l1(&mut self) {
        self.l1.invalidate_all();
    }

    /// Launches one thread block; returns `false` when warp contexts are
    /// insufficient.
    pub fn launch_block(
        &mut self,
        kernel: &Arc<KernelParams>,
        block_id: u32,
        seed: u64,
        cycle: u64,
    ) -> bool {
        let needed = kernel.warps_per_block() as usize;
        if self.free_warp_slots() < needed {
            return false;
        }
        // Claim or reuse a block slot.
        let block_slot = match self.blocks.iter().position(|&c| c == 0) {
            Some(i) => {
                self.blocks[i] = needed as u32;
                i
            }
            None => {
                self.blocks.push(needed as u32);
                self.blocks.len() - 1
            }
        };
        let mut placed = 0u32;
        for slot in 0..self.warps.len() {
            if placed == needed as u32 {
                break;
            }
            if self.warps[slot].is_none() {
                let program = WarpProgram::new(
                    Arc::clone(kernel),
                    block_id,
                    placed,
                    seed,
                    self.l1.line_bytes(),
                );
                let mut warp = Warp::new(program, block_slot);
                warp.age = self.age_counter;
                self.age_counter += 1;
                warp.ready_at = cycle;
                warp.queued = true;
                self.warps[slot] = Some(warp);
                self.ready.push_back(slot);
                placed += 1;
            }
        }
        if placed != needed as u32 {
            // The free-slot check above should make this unreachable; the
            // checker reports it instead of silently under-launching.
            self.trace.emit(|| TraceEvent::LaunchUnderfill {
                sm: self.id,
                placed,
                needed: needed as u32,
            });
            debug_assert_eq!(placed, needed as u32);
        }
        true
    }

    /// Retires `slot`'s warp; returns `true` when its whole block retired.
    fn retire_warp(&mut self, slot: usize) -> bool {
        let warp = self.warps[slot].take().expect("retiring a live warp");
        let left = &mut self.blocks[warp.block_slot];
        *left -= 1;
        *left == 0
    }

    /// Delivers an L1 fill response, waking warps. Returns the number of
    /// blocks that retired as a result.
    pub fn deliver_fill(&mut self, byte_addr: u64, now_ns: u64, mem: &mut MemSystem) -> u32 {
        let (tokens, dirty_victim) = self.l1.fill(byte_addr, now_ns);
        if let Some(victim_addr) = dirty_victim {
            mem.write_request(self.id, victim_addr, now_ns);
        }
        let mut blocks_retired = 0;
        for token in tokens {
            let slot = token as usize;
            let Some(warp) = self.warps[slot].as_mut() else {
                continue;
            };
            warp.pending_loads = warp.pending_loads.saturating_sub(1);
            if warp.queued {
                continue;
            }
            if warp.can_retire() {
                if self.retire_warp(slot) {
                    blocks_retired += 1;
                }
            } else if warp.pending_loads < self.max_pending && !warp.stream_done() {
                warp.queued = true;
                self.ready.push_back(slot);
            }
        }
        blocks_retired
    }

    /// Executes one instruction's memory reads. Returns `(misses_issued,
    /// true)` on success or `(partial, false)` on an MSHR-full abort.
    fn issue_reads(
        &mut self,
        slot: usize,
        addrs: &[u64],
        mem: &mut MemSystem,
        now_ns: u64,
    ) -> (u32, bool) {
        let mut misses = 0;
        for &addr in addrs {
            match self.l1.read(addr, slot as u64, now_ns) {
                L1ReadOutcome::Hit => {}
                L1ReadOutcome::MissIssued => {
                    mem.read_request(self.id, addr, now_ns);
                    misses += 1;
                }
                L1ReadOutcome::MissMerged => {
                    misses += 1;
                }
                L1ReadOutcome::MshrFull => {
                    return (misses, false);
                }
            }
        }
        (misses, true)
    }

    /// Removes and returns the next issuable warp slot per the scheduling
    /// policy, or `None` if no queued warp can issue this cycle.
    fn pop_issuable(&mut self, cycle: u64) -> Option<usize> {
        let issuable = |warps: &[Option<Warp>], slot: usize| {
            warps[slot].as_ref().is_some_and(|w| w.ready_at <= cycle)
        };
        match self.scheduler {
            WarpScheduler::LooseRoundRobin => {
                // Rotate until an issuable warp surfaces.
                for _ in 0..self.ready.len() {
                    let slot = self.ready.pop_front()?;
                    if issuable(&self.warps, slot) {
                        return Some(slot);
                    }
                    self.ready.push_back(slot);
                }
                None
            }
            WarpScheduler::GreedyThenOldest => {
                // Stick with the greedy warp while it can issue...
                if let Some(g) = self.greedy {
                    if let Some(idx) = self.ready.iter().position(|&s| s == g) {
                        if issuable(&self.warps, g) {
                            self.ready.remove(idx);
                            return Some(g);
                        }
                    }
                }
                // ...otherwise the oldest ready warp becomes greedy.
                let best = self
                    .ready
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| issuable(&self.warps, s))
                    .min_by_key(|&(_, &s)| self.warps[s].as_ref().expect("queued").age)
                    .map(|(idx, _)| idx)?;
                let slot = self.ready.remove(best).expect("index valid");
                self.greedy = Some(slot);
                Some(slot)
            }
        }
    }

    /// Runs one cycle of issue. Returns the number of blocks retired.
    pub fn cycle(&mut self, mem: &mut MemSystem, cycle: u64, now_ns: u64) -> u32 {
        let mut blocks_retired = 0;
        let mut issued = 0u32;
        let mut issued_any = false;

        while issued < self.issue_width {
            let Some(slot) = self.pop_issuable(cycle) else {
                break;
            };
            let warp = self.warps[slot].as_mut().expect("queued warp is live");

            let Some(instr) = warp.take_instr() else {
                // Stream exhausted: retire or wait for loads to drain.
                warp.queued = false;
                if warp.can_retire() && self.retire_warp(slot) {
                    blocks_retired += 1;
                }
                continue;
            };

            issued += 1;
            issued_any = true;
            match instr {
                WarpInstr::Alu => {
                    self.instructions += self.warp_size as u64;
                    let dep = self.dep_interval;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.ready_at = cycle + dep;
                    self.ready.push_back(slot);
                }
                WarpInstr::MemWrite(addrs) => {
                    for &addr in &addrs {
                        self.l1.write(addr, now_ns);
                        mem.write_request(self.id, addr, now_ns);
                    }
                    self.instructions += self.warp_size as u64;
                    let dep = self.dep_interval;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.ready_at = cycle + dep;
                    self.ready.push_back(slot);
                }
                WarpInstr::LocalWrite(addrs) => {
                    // Write-back/write-allocate (paper Fig. 1-b): the write
                    // stays in L1; only displaced dirty lines reach L2.
                    for &addr in &addrs {
                        if let Some(victim) = self.l1.write_local(addr, now_ns) {
                            mem.write_request(self.id, victim, now_ns);
                        }
                    }
                    self.instructions += self.warp_size as u64;
                    let dep = self.dep_interval;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.ready_at = cycle + dep;
                    self.ready.push_back(slot);
                }
                WarpInstr::MemRead(addrs) | WarpInstr::LocalRead(addrs) => {
                    let (misses, ok) = self.issue_reads(slot, &addrs, mem, now_ns);
                    let max_pending = self.max_pending;
                    let warp = self.warps[slot].as_mut().expect("live");
                    warp.pending_loads += misses;
                    if !ok {
                        // MSHR full: replay the whole instruction later.
                        self.mshr_stalls += 1;
                        warp.replay = Some(WarpInstr::MemRead(addrs));
                        warp.ready_at = cycle + MSHR_RETRY_CYCLES;
                        self.ready.push_back(slot);
                        continue;
                    }
                    self.instructions += self.warp_size as u64;
                    if warp.pending_loads >= max_pending {
                        // Stalled: wakes via deliver_fill.
                        warp.queued = false;
                    } else if warp.stream_done() {
                        warp.queued = false;
                        if warp.can_retire() && self.retire_warp(slot) {
                            blocks_retired += 1;
                        }
                    } else {
                        warp.ready_at = cycle + self.dep_interval;
                        self.ready.push_back(slot);
                    }
                }
            }
        }

        if !issued_any && !self.is_idle() {
            self.idle_cycles += 1;
        }
        blocks_retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GpuConfig, L2ModelConfig};
    use sttgpu_core::LlcModel;

    fn setup(kernel: KernelParams) -> (Sm, MemSystem, Arc<KernelParams>) {
        let mut cfg = GpuConfig::gtx480();
        cfg.l2 = L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 2,
        };
        (Sm::new(&cfg, 0), MemSystem::new(&cfg), Arc::new(kernel))
    }

    /// Runs the SM until idle, delivering memory responses.
    fn run_to_completion(sm: &mut Sm, mem: &mut MemSystem, max_cycles: u64) -> u32 {
        let mut retired = 0;
        let mut fills = Vec::new();
        for cycle in 0..max_cycles {
            let now_ns = cycle * 5 / 7;
            mem.tick(now_ns, &mut fills);
            for &fill in &fills {
                retired += sm.deliver_fill(fill.byte_addr, now_ns, mem);
            }
            retired += sm.cycle(mem, cycle, now_ns);
            if sm.is_idle() && mem.is_idle() {
                return retired;
            }
        }
        panic!("SM did not drain in {max_cycles} cycles");
    }

    #[test]
    fn launch_and_drain_alu_only_block() {
        let k = KernelParams::new("k", 1, 64)
            .with_instructions(100)
            .with_mem_fraction(0.0);
        let (mut sm, mut mem, k) = setup(k);
        assert!(sm.launch_block(&k, 0, 1, 0));
        assert_eq!(sm.live_warps(), 2);
        let retired = run_to_completion(&mut sm, &mut mem, 10_000);
        assert_eq!(retired, 1);
        assert!(sm.is_idle());
        // 2 warps * 100 instr * 32 threads.
        assert_eq!(sm.instructions, 6_400);
    }

    #[test]
    fn memory_kernel_completes_with_l2_traffic() {
        let k = KernelParams::new("k", 1, 64)
            .with_instructions(300)
            .with_mem_fraction(0.5)
            .with_write_fraction(0.2)
            .with_footprint_kb(128);
        let (mut sm, mut mem, k) = setup(k);
        sm.launch_block(&k, 0, 2, 0);
        run_to_completion(&mut sm, &mut mem, 2_000_000);
        assert!(mem.llc().summary().accesses() > 0, "L2 must see traffic");
        assert!(mem.dram_reads > 0, "cold misses must reach DRAM");
    }

    #[test]
    fn capacity_respected() {
        let k = KernelParams::new("k", 4, 32 * 48); // 48 warps per block
        let (mut sm, _mem, k) = setup(k);
        assert!(sm.launch_block(&k, 0, 1, 0));
        assert_eq!(sm.free_warp_slots(), 0);
        assert!(!sm.launch_block(&k, 1, 1, 0), "no contexts left");
    }

    #[test]
    fn multiple_blocks_share_the_sm() {
        let k = KernelParams::new("k", 2, 64)
            .with_instructions(50)
            .with_mem_fraction(0.0);
        let (mut sm, mut mem, k) = setup(k);
        assert!(sm.launch_block(&k, 0, 1, 0));
        assert!(sm.launch_block(&k, 1, 1, 0));
        assert_eq!(sm.live_blocks(), 2);
        let retired = run_to_completion(&mut sm, &mut mem, 100_000);
        assert_eq!(retired, 2);
    }

    #[test]
    fn block_slot_reuse_after_retirement() {
        let k = KernelParams::new("k", 3, 64)
            .with_instructions(10)
            .with_mem_fraction(0.0);
        let (mut sm, mut mem, k) = setup(k);
        sm.launch_block(&k, 0, 1, 0);
        run_to_completion(&mut sm, &mut mem, 10_000);
        assert!(sm.launch_block(&k, 1, 1, 0), "slots must be reusable");
        assert_eq!(sm.live_blocks(), 1);
    }

    #[test]
    fn idle_cycles_counted_when_warps_stall() {
        // One warp, pure loads over a big footprint: it will stall on
        // DRAM and the SM will idle.
        let k = KernelParams::new("k", 1, 32)
            .with_instructions(50)
            .with_mem_fraction(1.0)
            .with_write_fraction(0.0)
            .with_read_locality(0.0)
            .with_footprint_kb(4 * 1024);
        let (mut sm, mut mem, k) = setup(k);
        sm.launch_block(&k, 0, 3, 0);
        run_to_completion(&mut sm, &mut mem, 2_000_000);
        assert!(sm.idle_cycles > 0, "a single warp cannot hide DRAM latency");
    }
}
