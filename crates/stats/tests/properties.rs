//! Randomized property tests for the statistics substrate, driven by the
//! in-tree deterministic [`Rng`] (no external fuzzing dependency).

use sttgpu_stats::{coefficient_of_variation, Histogram, Rng, RunningStats, WriteVariation};

/// Welford accumulation matches the naive two-pass formulas.
#[test]
fn welford_matches_naive() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..50 {
        let n = rng.range_usize(1, 200);
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let rs: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((rs.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((rs.population_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }
}

/// Merging two accumulators equals accumulating the concatenation.
#[test]
fn merge_is_concatenation() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..50 {
        let a: Vec<f64> = (0..rng.range_usize(0, 50))
            .map(|_| rng.range_f64(-1e3, 1e3))
            .collect();
        let b: Vec<f64> = (0..rng.range_usize(0, 50))
            .map(|_| rng.range_f64(-1e3, 1e3))
            .collect();
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let both: RunningStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(left.count(), both.count());
        assert!((left.mean() - both.mean()).abs() < 1e-6);
        assert!((left.population_variance() - both.population_variance()).abs() < 1e-4);
    }
}

/// Draws a sorted set of distinct histogram bounds.
fn random_bounds(rng: &mut Rng, lo: u64, hi: u64, min_n: usize, max_n: usize) -> Vec<u64> {
    let n = rng.range_usize(min_n, max_n);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(rng.range_u64(lo, hi));
    }
    set.into_iter().collect()
}

/// Every recorded sample lands in exactly one bucket.
#[test]
fn histogram_conserves_samples() {
    let mut rng = Rng::new(0xD00D);
    for _ in 0..50 {
        let bounds = random_bounds(&mut rng, 1, 10_000, 1, 8);
        let values: Vec<u64> = (0..rng.range_usize(0, 200))
            .map(|_| rng.range_u64(0, 20_000))
            .collect();
        let mut h = Histogram::new(&bounds);
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.total(), values.len() as u64);
        assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
    }
}

/// Bucketing respects the inclusive upper bounds.
#[test]
fn histogram_bucket_ordering() {
    let mut rng = Rng::new(0xF00D);
    for _ in 0..200 {
        let bounds = random_bounds(&mut rng, 1, 1_000, 2, 6);
        let v = rng.range_u64(0, 2_000);
        let mut h = Histogram::new(&bounds);
        h.record(v);
        let counts = h.counts();
        let idx = counts
            .iter()
            .position(|&c| c == 1)
            .expect("one bucket must hold the sample");
        if idx < bounds.len() {
            assert!(v <= bounds[idx]);
        }
        if idx > 0 {
            assert!(v > bounds[idx - 1]);
        }
    }
}

/// COV is invariant under positive scaling.
#[test]
fn cov_scale_invariant() {
    let mut rng = Rng::new(0xACE);
    for _ in 0..50 {
        let xs: Vec<f64> = (0..rng.range_usize(2, 100))
            .map(|_| rng.range_f64(0.1, 1e3))
            .collect();
        let scale = rng.range_f64(0.1, 100.0);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let a = coefficient_of_variation(&xs);
        let b = coefficient_of_variation(&scaled);
        assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
    }
}

/// Write-variation metrics are non-negative and zero for uniform matrices.
#[test]
fn write_variation_sanity() {
    let mut rng = Rng::new(0x5150);
    for _ in 0..50 {
        let sets = rng.range_usize(1, 16);
        let ways = rng.range_usize(1, 16);
        let fill = rng.range_u64(0, 100);
        let uniform = vec![vec![fill; ways]; sets];
        let wv = WriteVariation::from_counts(&uniform);
        assert_eq!(wv.inter_set, 0.0);
        assert_eq!(wv.intra_set, 0.0);
    }
}

/// Permuting ways within each set leaves intra-set variation unchanged.
#[test]
fn intra_set_permutation_invariant() {
    let mut rng = Rng::new(0x1234);
    for _ in 0..50 {
        let sets = rng.range_usize(2, 8);
        let ways = rng.range_usize(4, 6);
        let mut matrix: Vec<Vec<u64>> = (0..sets)
            .map(|_| (0..ways).map(|_| rng.range_u64(0, 50)).collect())
            .collect();
        let before = WriteVariation::from_counts(&matrix);
        for set in &mut matrix {
            set.reverse();
        }
        let after = WriteVariation::from_counts(&matrix);
        assert!((before.inter_set - after.inter_set).abs() < 1e-9);
        assert!((before.intra_set - after.intra_set).abs() < 1e-9);
    }
}
