//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use sttgpu_stats::{coefficient_of_variation, Histogram, RunningStats, WriteVariation};

proptest! {
    /// Welford accumulation matches the naive two-pass formulas.
    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let rs: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((rs.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((rs.population_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn merge_is_concatenation(
        a in proptest::collection::vec(-1e3f64..1e3, 0..50),
        b in proptest::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let both: RunningStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(left.count(), both.count());
        prop_assert!((left.mean() - both.mean()).abs() < 1e-6);
        prop_assert!((left.population_variance() - both.population_variance()).abs() < 1e-4);
    }

    /// Every recorded sample lands in exactly one bucket.
    #[test]
    fn histogram_conserves_samples(
        bounds in proptest::collection::btree_set(1u64..10_000, 1..8),
        values in proptest::collection::vec(0u64..20_000, 0..200),
    ) {
        let bounds: Vec<u64> = bounds.into_iter().collect();
        let mut h = Histogram::new(&bounds);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
    }

    /// Bucketing respects the inclusive upper bounds.
    #[test]
    fn histogram_bucket_ordering(
        bounds in proptest::collection::btree_set(1u64..1_000, 2..6),
        v in 0u64..2_000,
    ) {
        let bounds: Vec<u64> = bounds.into_iter().collect();
        let mut h = Histogram::new(&bounds);
        h.record(v);
        let counts = h.counts();
        let idx = counts.iter().position(|&c| c == 1).expect("one bucket must hold the sample");
        if idx < bounds.len() {
            prop_assert!(v <= bounds[idx]);
        }
        if idx > 0 {
            prop_assert!(v > bounds[idx - 1]);
        }
    }

    /// COV is invariant under positive scaling.
    #[test]
    fn cov_scale_invariant(
        xs in proptest::collection::vec(0.1f64..1e3, 2..100),
        scale in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let a = coefficient_of_variation(&xs);
        let b = coefficient_of_variation(&scaled);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
    }

    /// Write-variation metrics are non-negative and zero for uniform
    /// matrices.
    #[test]
    fn write_variation_sanity(
        sets in 1usize..16,
        ways in 1usize..16,
        fill in 0u64..100,
    ) {
        let uniform = vec![vec![fill; ways]; sets];
        let wv = WriteVariation::from_counts(&uniform);
        prop_assert_eq!(wv.inter_set, 0.0);
        prop_assert_eq!(wv.intra_set, 0.0);
    }

    /// Permuting ways within each set leaves intra-set variation unchanged.
    #[test]
    fn intra_set_permutation_invariant(
        mut matrix in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 4..4usize.saturating_add(1).max(5)),
            2..8,
        )
    ) {
        let before = WriteVariation::from_counts(&matrix);
        for set in &mut matrix {
            set.reverse();
        }
        let after = WriteVariation::from_counts(&matrix);
        prop_assert!((before.inter_set - after.inter_set).abs() < 1e-9);
        prop_assert!((before.intra_set - after.intra_set).abs() < 1e-9);
    }
}
