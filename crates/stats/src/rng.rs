//! Small deterministic pseudo-random number generator.
//!
//! The simulator needs reproducible randomness (warp-program generation,
//! randomized tests) without pulling an external crate into the offline
//! build. This is xoshiro256++ seeded through splitmix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets — so stream
//! quality is well understood while every byte stays in-tree.
//!
//! Streams are a stable part of the simulator's contract: two runs with the
//! same seed produce bit-identical traces, and the experiment runner's
//! memoization relies on that.
//!
//! ```
//! use sttgpu_stats::Rng;
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.range_u64(0, 10) < 10);
//! ```

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of splitmix64; used to expand a single seed word into the
/// four-word xoshiro state so that similar seeds give unrelated streams.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Any seed is fine, including
    /// zero; the splitmix expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    /// Uses multiply-shift rejection so the distribution is unbiased.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Lemire's multiply-shift with rejection on the low word.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(123);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 17);
            assert!((10..17).contains(&v));
        }
        for _ in 0..1000 {
            let f = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.range_usize(0, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_half_on_average() {
        let mut r = Rng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.f64_unit()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_extremes_consume_no_stream() {
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        assert!(!a.chance(-1.0));
        assert!(a.chance(2.0));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
