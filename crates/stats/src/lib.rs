//! Statistics substrate for the `sttgpu` GPU/STT-RAM simulation stack.
//!
//! The DAC 2014 paper this project reproduces characterises GPGPU
//! applications through a handful of statistics: per-block write counts and
//! their **coefficient of variation** across and within cache sets (Fig. 3),
//! **rewrite-interval histograms** (Fig. 6), and plain event counters used
//! everywhere in the evaluation. This crate provides those primitives with
//! no dependency on the rest of the stack so every other crate can use them.
//!
//! # Example
//!
//! ```
//! use sttgpu_stats::{Histogram, RunningStats, WriteVariation};
//!
//! // A rewrite-interval histogram with the paper's Fig. 6 bucket bounds (ns).
//! let mut h = Histogram::new(&[1_000, 5_000, 10_000, 1_000_000, 2_500_000]);
//! h.record(300);        // 0.3 us  -> first bucket
//! h.record(2_000_000);  // 2 ms    -> <=2.5 ms bucket
//! assert_eq!(h.total(), 2);
//!
//! let mut rs = RunningStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     rs.push(x);
//! }
//! assert!((rs.mean() - 2.0).abs() < 1e-12);
//!
//! // Inter/intra-set write variation over a 2-set x 2-way write-count matrix.
//! let wv = WriteVariation::from_counts(&[vec![4, 4], vec![1, 1]]);
//! assert!(wv.inter_set > wv.intra_set);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod cov;
mod histogram;
pub mod rng;
mod running;

pub use counter::Counter;
pub use cov::{coefficient_of_variation, WriteVariation};
pub use histogram::{Bucket, Histogram};
pub use rng::Rng;
pub use running::RunningStats;
