//! Saturating event counter.

use std::fmt;

/// A monotonically increasing, saturating event counter.
///
/// Used throughout the simulator for access/hit/miss/migration counts. The
/// counter saturates at [`u64::MAX`] instead of wrapping so that arithmetic
/// on pathological (multi-day) runs can never silently overflow.
///
/// # Example
///
/// ```
/// use sttgpu_stats::Counter;
///
/// let mut hits = Counter::new();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n` to the counter, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Returns the count as an `f64`, convenient for ratio computations.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns `self / other` as a fraction, or 0.0 when `other` is zero.
    ///
    /// Handy for hit rates: `hits.ratio_of(accesses)`.
    pub fn ratio_of(self, other: Counter) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Counter(v)
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> Self {
        c.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Counter::new().get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn inc_and_add() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn add_assign_operator() {
        let mut c = Counter::new();
        c += 5;
        c += 7;
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = Counter::from(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn reset_clears() {
        let mut c = Counter::from(9);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_of_handles_zero_denominator() {
        let hits = Counter::from(10);
        assert_eq!(hits.ratio_of(Counter::new()), 0.0);
        assert!((hits.ratio_of(Counter::from(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conversions_roundtrip() {
        let c = Counter::from(7);
        let v: u64 = c.into();
        assert_eq!(v, 7);
        assert_eq!(c.as_f64(), 7.0);
    }

    #[test]
    fn display_matches_u64() {
        assert_eq!(Counter::from(123).to_string(), "123");
    }
}
