//! Inter-set and intra-set write-variation metrics (Fig. 3).
//!
//! The paper adopts the coefficient-of-variation formulation of
//! i2WAP (Wang et al., HPCA 2013) to quantify how unevenly writes are
//! distributed over the L2's cache blocks:
//!
//! * **inter-set variation** — how much the *average* write count of each
//!   set deviates across sets, and
//! * **intra-set variation** — how much individual ways deviate *within*
//!   their set, averaged over sets.
//!
//! Both are normalised by the grand mean write count so that values are
//! comparable across workloads with very different write volumes.

use crate::RunningStats;

/// Coefficient of variation (population std-dev divided by mean) of a
/// sample slice. Returns 0.0 for empty input or zero mean.
///
/// # Example
///
/// ```
/// use sttgpu_stats::coefficient_of_variation;
///
/// assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
/// assert!(coefficient_of_variation(&[0.0, 10.0]) > 0.9);
/// ```
pub fn coefficient_of_variation(samples: &[f64]) -> f64 {
    let rs: RunningStats = samples.iter().copied().collect();
    rs.cov()
}

/// Inter-set and intra-set write variation of a per-line write-count matrix.
///
/// Produced from `counts[set][way]` matrices collected by the L2 model;
/// this is the quantity plotted per workload in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WriteVariation {
    /// Variation of per-set average write counts across sets, normalised by
    /// the grand mean (i2WAP "InterV").
    pub inter_set: f64,
    /// Average over sets of the within-set write-count standard deviation,
    /// normalised by the grand mean (i2WAP "IntraV").
    pub intra_set: f64,
}

impl WriteVariation {
    /// Computes both metrics from a `counts[set][way]` matrix.
    ///
    /// Sets may have differing way counts (useful for testing); empty sets
    /// contribute nothing. Returns all-zero metrics when the matrix carries
    /// no writes at all.
    ///
    /// # Example
    ///
    /// ```
    /// use sttgpu_stats::WriteVariation;
    ///
    /// // Writes concentrated in one set: inter-set variation dominates.
    /// let skewed = WriteVariation::from_counts(&[vec![8, 8], vec![0, 0]]);
    /// assert!(skewed.inter_set > 0.9);
    /// assert_eq!(skewed.intra_set, 0.0);
    ///
    /// // Writes concentrated in one way of each set: intra-set dominates.
    /// let lopsided = WriteVariation::from_counts(&[vec![8, 0], vec![8, 0]]);
    /// assert_eq!(lopsided.inter_set, 0.0);
    /// assert!(lopsided.intra_set > 0.9);
    /// ```
    pub fn from_counts(counts: &[Vec<u64>]) -> Self {
        let mut grand = RunningStats::new();
        for set in counts {
            for &w in set {
                grand.push(w as f64);
            }
        }
        let grand_mean = grand.mean();
        if grand.count() == 0 || grand_mean == 0.0 {
            return WriteVariation::default();
        }

        // Inter-set: std-dev of per-set means, over the grand mean.
        let mut set_means = RunningStats::new();
        // Intra-set: mean of per-set std-devs, over the grand mean.
        let mut intra_acc = RunningStats::new();
        for set in counts {
            if set.is_empty() {
                continue;
            }
            let rs: RunningStats = set.iter().map(|&w| w as f64).collect();
            set_means.push(rs.mean());
            intra_acc.push(rs.population_std_dev());
        }

        WriteVariation {
            inter_set: set_means.population_std_dev() / grand_mean,
            intra_set: intra_acc.mean() / grand_mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_have_zero_variation() {
        let wv = WriteVariation::from_counts(&[vec![3, 3], vec![3, 3]]);
        assert_eq!(wv.inter_set, 0.0);
        assert_eq!(wv.intra_set, 0.0);
    }

    #[test]
    fn empty_matrix_is_zero() {
        assert_eq!(WriteVariation::from_counts(&[]), WriteVariation::default());
        assert_eq!(
            WriteVariation::from_counts(&[vec![], vec![]]),
            WriteVariation::default()
        );
    }

    #[test]
    fn all_zero_writes_is_zero() {
        let wv = WriteVariation::from_counts(&[vec![0, 0], vec![0, 0]]);
        assert_eq!(wv, WriteVariation::default());
    }

    #[test]
    fn pure_inter_set_skew() {
        // Set 0 gets all writes, evenly within the set.
        let wv = WriteVariation::from_counts(&[vec![10, 10], vec![0, 0]]);
        // Set means are 10 and 0, grand mean 5 => inter = 5/5 = 1.
        assert!((wv.inter_set - 1.0).abs() < 1e-12);
        assert_eq!(wv.intra_set, 0.0);
    }

    #[test]
    fn pure_intra_set_skew() {
        let wv = WriteVariation::from_counts(&[vec![10, 0], vec![10, 0]]);
        // Each set: mean 5, std-dev 5; grand mean 5 => intra = 1.
        assert_eq!(wv.inter_set, 0.0);
        assert!((wv.intra_set - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_skew_yields_both_components() {
        let wv = WriteVariation::from_counts(&[vec![12, 4], vec![2, 2]]);
        assert!(wv.inter_set > 0.0);
        assert!(wv.intra_set > 0.0);
    }

    #[test]
    fn cov_helper_basics() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[1.0]), 0.0);
        let c = coefficient_of_variation(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((c - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        let a = WriteVariation::from_counts(&[vec![1, 3], vec![5, 7]]);
        let b = WriteVariation::from_counts(&[vec![10, 30], vec![50, 70]]);
        assert!((a.inter_set - b.inter_set).abs() < 1e-12);
        assert!((a.intra_set - b.intra_set).abs() < 1e-12);
    }
}
