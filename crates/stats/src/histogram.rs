//! Bucketed histogram with explicit upper bounds.

use std::fmt;

/// One histogram bucket: samples with `value <= upper_bound` (and greater
/// than the previous bucket's bound) land here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket, `u64::MAX` for the overflow
    /// bucket.
    pub upper_bound: u64,
    /// Number of samples recorded into the bucket.
    pub count: u64,
}

/// A histogram over `u64` samples with caller-supplied bucket upper bounds.
///
/// An implicit overflow bucket (`> last bound`) is always appended, so Fig. 6
/// of the paper ("rewrite interval time distribution": ≤1 µs, ≤5 µs, ≤10 µs,
/// ≤1 ms, >2.5 ms) maps onto bounds `[1_000, 5_000, 10_000, 1_000_000,
/// 2_500_000]` nanoseconds plus the implicit `>2.5 ms` bucket.
///
/// # Example
///
/// ```
/// use sttgpu_stats::Histogram;
///
/// let mut h = Histogram::new(&[10, 100]);
/// h.record(5);
/// h.record(50);
/// h.record(500);
/// assert_eq!(h.counts(), vec![1, 1, 1]);
/// assert!((h.fraction(0) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing inclusive
    /// upper bounds. An overflow bucket is appended automatically.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Records a sample with a weight (e.g. a pre-aggregated count).
    pub fn record_weighted(&mut self, value: u64, weight: u64) {
        let idx = self.bucket_index(value);
        self.counts[idx] = self.counts[idx].saturating_add(weight);
        self.total = self.total.saturating_add(weight);
    }

    fn bucket_index(&self, value: u64) -> usize {
        // partition_point returns the count of bounds < value, i.e. the
        // first bucket whose inclusive upper bound admits the value.
        self.bounds.partition_point(|&b| b < value)
    }

    /// Total number of samples (including weights).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets, including the overflow bucket.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.counts.clone()
    }

    /// The configured inclusive upper bounds (the overflow bucket is
    /// implicit and not listed).
    pub fn bounds(&self) -> Vec<u64> {
        self.bounds.clone()
    }

    /// Rebuilds a histogram from parts previously captured via
    /// [`bounds`](Self::bounds), [`counts`](Self::counts) and
    /// [`total`](Self::total) — the persistence path. Returns `None`
    /// instead of panicking when the parts are inconsistent (bounds not
    /// strictly increasing, or a count-vector length that does not match
    /// the bounds), so untrusted bytes can never poison an invariant.
    pub fn try_from_parts(bounds: Vec<u64>, counts: Vec<u64>, total: u64) -> Option<Self> {
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        Some(Histogram {
            bounds,
            counts,
            total,
        })
    }

    /// Fraction of samples in bucket `idx`, or 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[idx] as f64 / self.total as f64
        }
    }

    /// All bucket fractions, in bucket order.
    pub fn fractions(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.fraction(i)).collect()
    }

    /// Iterates over buckets as [`Bucket`] values; the overflow bucket is
    /// reported with `upper_bound == u64::MAX`.
    pub fn iter(&self) -> impl Iterator<Item = Bucket> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &count)| Bucket {
                upper_bound: self.bounds.get(i).copied().unwrap_or(u64::MAX),
                count,
            })
    }

    /// Fraction of samples at or below `bound` (bound must equal one of the
    /// configured bucket bounds to be meaningful).
    pub fn cumulative_fraction_at(&self, bound: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self
            .bounds
            .iter()
            .zip(&self.counts)
            .filter(|(&b, _)| b <= bound)
            .map(|(_, &c)| c)
            .sum();
        upto as f64 / self.total as f64
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(*o);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// Clears all counts, keeping the bucket layout.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            if b.upper_bound == u64::MAX {
                writeln!(f, "  >rest: {}", b.count)?;
            } else {
                writeln!(f, "  <={}: {}", b.upper_bound, b.count)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip_and_reject_inconsistency() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let back =
            Histogram::try_from_parts(h.bounds(), h.counts(), h.total()).expect("consistent parts");
        assert_eq!(back, h);
        assert!(Histogram::try_from_parts(vec![10, 10], vec![0, 0, 0], 0).is_none());
        assert!(Histogram::try_from_parts(vec![10, 100], vec![0, 0], 0).is_none());
    }

    #[test]
    fn boundaries_are_inclusive() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(10);
        h.record(11);
        h.record(100);
        h.record(101);
        assert_eq!(h.counts(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_increasing_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn weighted_record() {
        let mut h = Histogram::new(&[5]);
        h.record_weighted(3, 7);
        h.record_weighted(9, 2);
        assert_eq!(h.counts(), vec![7, 2]);
        assert_eq!(h.total(), 9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(&[1, 2, 3]);
        for v in [0, 1, 2, 3, 4, 5] {
            h.record(v);
        }
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_fraction() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.record(5); // <=10
        h.record(50); // <=100
        h.record(500); // <=1000
        h.record(5000); // overflow
        assert!((h.cumulative_fraction_at(100) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_fraction_at(1000) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(&[10]);
        let mut b = Histogram::new(&[10]);
        a.record(1);
        b.record(1);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.counts(), vec![2, 1]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn merge_rejects_different_layouts() {
        let mut a = Histogram::new(&[10]);
        let b = Histogram::new(&[20]);
        a.merge(&b);
    }

    #[test]
    fn reset_keeps_layout() {
        let mut h = Histogram::new(&[10]);
        h.record(1);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.fraction(0), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn fig6_bucket_layout() {
        // The exact layout used for Fig. 6 reproduction.
        let mut h = Histogram::new(&[1_000, 5_000, 10_000, 1_000_000, 2_500_000]);
        h.record(999); // <=1us
        h.record(4_999); // <=5us
        h.record(9_000); // <=10us
        h.record(999_999); // <=1ms
        h.record(2_400_000); // <=2.5ms
        h.record(3_000_000); // >2.5ms
        assert_eq!(h.counts(), vec![1, 1, 1, 1, 1, 1]);
    }
}
