//! Single-pass mean/variance accumulation (Welford's algorithm).

/// Running mean, variance, min and max over a stream of samples.
///
/// Uses Welford's numerically stable single-pass algorithm, so the whole
/// sample stream never has to be materialised. This is the building block
/// for the coefficient-of-variation computations of Fig. 3.
///
/// # Example
///
/// ```
/// use sttgpu_stats::RunningStats;
///
/// let mut rs = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     rs.push(x);
/// }
/// assert!((rs.mean() - 5.0).abs() < 1e-12);
/// assert!((rs.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by *n*), or 0.0 for fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by *n − 1*), or 0.0 for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (population std-dev / mean), or 0.0 when the
    /// mean is zero.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.population_std_dev() / m
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut rs = RunningStats::new();
        rs.extend(iter);
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let rs = RunningStats::new();
        assert_eq!(rs.count(), 0);
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.population_variance(), 0.0);
        assert_eq!(rs.min(), None);
        assert_eq!(rs.max(), None);
    }

    #[test]
    fn single_sample() {
        let rs: RunningStats = [3.5].into_iter().collect();
        assert_eq!(rs.mean(), 3.5);
        assert_eq!(rs.population_variance(), 0.0);
        assert_eq!(rs.sample_variance(), 0.0);
        assert_eq!(rs.min(), Some(3.5));
        assert_eq!(rs.max(), Some(3.5));
    }

    #[test]
    fn known_variance() {
        let rs: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.population_variance() - 4.0).abs() < 1e-12);
        assert!((rs.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn cov_of_constant_stream_is_zero() {
        let rs: RunningStats = [5.0; 10].into_iter().collect();
        assert_eq!(rs.cov(), 0.0);
    }

    #[test]
    fn cov_zero_mean_guard() {
        let rs: RunningStats = [1.0, -1.0].into_iter().collect();
        assert_eq!(rs.cov(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.5, -2.0];
        let sequential: RunningStats = xs.into_iter().collect();
        let mut a: RunningStats = xs[..3].iter().copied().collect();
        let b: RunningStats = xs[3..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        assert!((a.mean() - sequential.mean()).abs() < 1e-12);
        assert!((a.population_variance() - sequential.population_variance()).abs() < 1e-12);
        assert_eq!(a.min(), sequential.min());
        assert_eq!(a.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a: RunningStats = xs.into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
