//! Deterministic, seeded fault injection for the two-part STT-RAM LLC.
//!
//! STT-RAM retention is stochastic: a cell with thermal stability Δ keeps
//! its bit for an *exponentially distributed* time with mean τ(Δ) =
//! τ₀·e^Δ, so a real low-retention array sees early flips long before the
//! architected deadline. The simulator's retention machinery treats the
//! deadline as hard; this crate supplies the missing tail as an injected,
//! fully replayable fault process:
//!
//! * **early retention flips** at a per-part rate derived from the MTJ
//!   retention target (λ = rate·line_bits/τ), answered by the LLC's
//!   per-line SECDED model (single-bit flips corrected, multi-bit flips
//!   uncorrectable);
//! * **dropped refreshes** — the refresh engine skips a due line;
//! * **swap-buffer stalls** — a transfer slot is transiently unavailable;
//! * **transient bank faults** — a tag probe must be retried once.
//!
//! Every decision is a *stateless keyed draw*: the outcome is a pure
//! function of `(plan seed, site, line address, timestamp)`, so a replay
//! of the same simulation sees the same faults regardless of execution
//! order, thread count or how many other lines were probed in between —
//! the property the experiment runner's memoization and the differential
//! tests rely on. With every rate at zero [`FaultPlan::enabled`] is
//! `false` and callers short-circuit, making the plan exactly transparent.
//!
//! ```
//! use sttgpu_device::mtj::RetentionTime;
//! use sttgpu_fault::{FaultConfig, FaultPlan};
//!
//! let cfg = FaultConfig::uniform(7, 1e-4);
//! let plan = FaultPlan::new(
//!     cfg,
//!     RetentionTime::from_micros(26.5),
//!     RetentionTime::from_millis(4.0),
//!     128,
//! );
//! assert!(plan.enabled());
//! // Same key, same answer — forever.
//! assert_eq!(
//!     plan.line_outcome(sttgpu_fault::FaultPart::Lr, 42, 100, 5_000),
//!     plan.line_outcome(sttgpu_fault::FaultPart::Lr, 42, 100, 5_000),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sttgpu_device::mtj::RetentionTime;
use sttgpu_stats::Rng;

/// Which retention domain a line lives in (the fault process has a
/// different flip rate per part).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPart {
    /// The low-retention (microsecond-class) part.
    Lr,
    /// The high-retention (millisecond-class) part.
    Hr,
}

/// What the injected fault process did to one resident line over its
/// current residency epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// No bit flipped; the line reads back clean.
    Clean,
    /// Exactly one bit flipped; SECDED corrects it (energy and latency
    /// are charged by the cache model).
    Corrected,
    /// Two or more bits flipped; SECDED detects but cannot correct.
    Uncorrectable,
}

/// Per-mechanism injection rates plus the stream seed. All rates are
/// probabilities in `[0, 1]`; the default is fully disabled.
///
/// `flip_rate` scales the *physical* early-flip hazard: a rate of `r`
/// means each bit's flip hazard is `r / τ` per nanosecond, i.e. `r` is
/// roughly the expected number of flips a bit suffers per retention
/// period. The other three rates are plain per-opportunity Bernoulli
/// probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the replayable fault stream.
    pub seed: u64,
    /// Early retention-flip intensity (expected flips per bit per
    /// retention period).
    pub flip_rate: f64,
    /// Probability that a due refresh is dropped (per refresh attempt).
    pub refresh_drop_rate: f64,
    /// Probability that a swap-buffer reservation stalls (per transfer).
    pub buffer_stall_rate: f64,
    /// Probability of a transient bank fault on a tag probe (per probe).
    pub bank_fault_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// The all-zero configuration: injection fully off.
    pub const fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            flip_rate: 0.0,
            refresh_drop_rate: 0.0,
            buffer_stall_rate: 0.0,
            bank_fault_rate: 0.0,
        }
    }

    /// Sets every mechanism to the same rate — the shape the `repro
    /// faults` ablation sweeps.
    pub const fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            flip_rate: rate,
            refresh_drop_rate: rate,
            buffer_stall_rate: rate,
            bank_fault_rate: rate,
        }
    }

    /// Whether any mechanism can fire.
    pub fn is_enabled(&self) -> bool {
        self.flip_rate > 0.0
            || self.refresh_drop_rate > 0.0
            || self.buffer_stall_rate > 0.0
            || self.bank_fault_rate > 0.0
    }
}

// Site discriminators and mixing keys for the stateless draws. The seed
// is expanded through splitmix64 inside `Rng::new`, so XOR-ing the
// multiplied key components is enough to decorrelate nearby sites,
// addresses and timestamps.
const SITE_FLIP: u64 = 0xF11B;
const SITE_FLIP_SEVERITY: u64 = 0xF115;
const SITE_REFRESH_DROP: u64 = 0xD20B;
const SITE_BUFFER_STALL: u64 = 0x57A1;
const SITE_BANK_FAULT: u64 = 0xBA2F;
const K1: u64 = 0x9E37_79B9_7F4A_7C15;
const K2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const K3: u64 = 0x1656_67B1_9E37_79F9;

/// A fully deterministic, replayable fault plan bound to one cache
/// geometry (per-part retention targets and the line size fix the flip
/// hazards).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Per-line flip hazard in LR, per nanosecond of residency.
    lr_flip_per_ns: f64,
    /// Per-line flip hazard in HR, per nanosecond of residency.
    hr_flip_per_ns: f64,
}

impl FaultPlan {
    /// Builds the plan for a cache whose LR/HR parts retain data for the
    /// given targets and whose lines are `line_bytes` wide.
    pub fn new(
        cfg: FaultConfig,
        lr_retention: RetentionTime,
        hr_retention: RetentionTime,
        line_bytes: u32,
    ) -> Self {
        let bits = (line_bytes as f64) * 8.0;
        FaultPlan {
            cfg,
            lr_flip_per_ns: cfg.flip_rate * bits / lr_retention.as_nanos(),
            hr_flip_per_ns: cfg.flip_rate * bits / hr_retention.as_nanos(),
        }
    }

    /// A plan that never injects anything.
    pub fn disabled() -> Self {
        FaultPlan {
            cfg: FaultConfig::disabled(),
            lr_flip_per_ns: 0.0,
            hr_flip_per_ns: 0.0,
        }
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any mechanism can fire. When `false`, callers may skip
    /// every hook — the plan is exactly transparent.
    pub fn enabled(&self) -> bool {
        self.cfg.is_enabled()
    }

    /// One stateless uniform draw in `[0, 1)` keyed by `(seed, site, a, b)`.
    #[inline]
    fn draw(&self, site: u64, a: u64, b: u64) -> f64 {
        Rng::new(
            self.cfg
                .seed
                .wrapping_add(site.wrapping_mul(K1))
                .wrapping_add(a.wrapping_mul(K2))
                .wrapping_add(b.wrapping_mul(K3)),
        )
        .f64_unit()
    }

    /// Evaluates the flip process for one resident line at read/scrub
    /// time. The line accumulated hazard `m = λ·age` over its residency
    /// epoch (`age = now - written_at`); flips are Poisson(m), SECDED
    /// corrects exactly one.
    ///
    /// The draw is keyed by `(la, written_at_ns)` — *not* by `now_ns` —
    /// so the outcome is **monotone in age**: a line that faulted stays
    /// faulted on every later look within the same epoch, and a corrected
    /// line can only escalate to uncorrectable, never heal. Writing the
    /// line starts a fresh epoch (new `written_at_ns`, fresh draw), which
    /// is exactly how a physical overwrite resets accumulated flips.
    pub fn line_outcome(
        &self,
        part: FaultPart,
        la: u64,
        written_at_ns: u64,
        now_ns: u64,
    ) -> FaultOutcome {
        let lambda = match part {
            FaultPart::Lr => self.lr_flip_per_ns,
            FaultPart::Hr => self.hr_flip_per_ns,
        };
        let age = now_ns.saturating_sub(written_at_ns);
        if lambda <= 0.0 || age == 0 {
            return FaultOutcome::Clean;
        }
        let m = lambda * age as f64;
        let p_clean = (-m).exp();
        let u = self.draw(SITE_FLIP, la, written_at_ns);
        if u < p_clean {
            return FaultOutcome::Clean;
        }
        // At least one flip. P(exactly one | at least one) = m·e^-m /
        // (1 - e^-m), which decreases monotonically in m, so with the
        // severity draw also fixed per epoch the outcome only ever
        // escalates as the line ages.
        let p_single = m * p_clean / (1.0 - p_clean);
        let v = self.draw(SITE_FLIP_SEVERITY, la, written_at_ns);
        if v < p_single {
            FaultOutcome::Corrected
        } else {
            FaultOutcome::Uncorrectable
        }
    }

    /// Whether the refresh engine drops the refresh due for `la` now.
    #[inline]
    pub fn drop_refresh(&self, la: u64, now_ns: u64) -> bool {
        self.cfg.refresh_drop_rate > 0.0
            && self.draw(SITE_REFRESH_DROP, la, now_ns) < self.cfg.refresh_drop_rate
    }

    /// Whether a swap-buffer reservation in direction `dir_index`
    /// (0 = HR→LR, 1 = LR→HR) stalls for `la` now.
    #[inline]
    pub fn buffer_stall(&self, dir_index: u64, la: u64, now_ns: u64) -> bool {
        self.cfg.buffer_stall_rate > 0.0
            && self.draw(SITE_BUFFER_STALL, la ^ dir_index.rotate_left(32), now_ns)
                < self.cfg.buffer_stall_rate
    }

    /// Whether a tag probe for `la` suffers a transient bank fault now.
    #[inline]
    pub fn bank_fault(&self, la: u64, now_ns: u64) -> bool {
        self.cfg.bank_fault_rate > 0.0
            && self.draw(SITE_BANK_FAULT, la, now_ns) < self.cfg.bank_fault_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(
            FaultConfig::uniform(0xFA17, rate),
            RetentionTime::from_micros(26.5),
            RetentionTime::from_millis(4.0),
            128,
        )
    }

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        assert!(!p.enabled());
        for la in 0..200 {
            assert_eq!(
                p.line_outcome(FaultPart::Lr, la, 0, u64::MAX),
                FaultOutcome::Clean
            );
            assert!(!p.drop_refresh(la, la * 7));
            assert!(!p.buffer_stall(1, la, la * 7));
            assert!(!p.bank_fault(la, la * 7));
        }
    }

    #[test]
    fn zero_rate_is_disabled_even_with_a_seed() {
        let p = plan(0.0);
        assert!(!p.enabled());
        assert_eq!(
            p.line_outcome(FaultPart::Hr, 9, 10, 1_000_000),
            FaultOutcome::Clean
        );
    }

    #[test]
    fn draws_are_deterministic_and_order_free() {
        let a = plan(1e-3);
        let b = plan(1e-3);
        // Interrogate `a` heavily first; `b` fresh — answers must match.
        for la in 0..500 {
            let _ = a.line_outcome(FaultPart::Lr, la, 3, 40_000);
        }
        for la in (0..500).rev() {
            assert_eq!(
                a.line_outcome(FaultPart::Lr, la, 3, 40_000),
                b.line_outcome(FaultPart::Lr, la, 3, 40_000),
                "la {la}"
            );
            assert_eq!(a.drop_refresh(la, 77), b.drop_refresh(la, 77));
            assert_eq!(a.buffer_stall(0, la, 77), b.buffer_stall(0, la, 77));
            assert_eq!(a.bank_fault(la, 77), b.bank_fault(la, 77));
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = FaultPlan::new(
            FaultConfig::uniform(1, 0.5),
            RetentionTime::from_micros(26.5),
            RetentionTime::from_millis(4.0),
            128,
        );
        let b = FaultPlan::new(
            FaultConfig::uniform(2, 0.5),
            RetentionTime::from_micros(26.5),
            RetentionTime::from_millis(4.0),
            128,
        );
        // At age 40 ns the LR hazard gives m ≈ 0.77: a mixed population
        // of clean/faulted lines whose membership is seed-dependent.
        let diverged = (0..256).any(|la| {
            a.line_outcome(FaultPart::Lr, la, 0, 40) != b.line_outcome(FaultPart::Lr, la, 0, 40)
        });
        assert!(diverged);
        let predicates_diverge = (0..256).any(|la| a.drop_refresh(la, 1) != b.drop_refresh(la, 1));
        assert!(predicates_diverge);
    }

    #[test]
    fn outcomes_are_monotone_in_age() {
        // Within one residency epoch a line can only move Clean →
        // Corrected → Uncorrectable as it ages, never backwards.
        let p = plan(0.05);
        fn sev(o: FaultOutcome) -> u8 {
            match o {
                FaultOutcome::Clean => 0,
                FaultOutcome::Corrected => 1,
                FaultOutcome::Uncorrectable => 2,
            }
        }
        for la in 0..300 {
            let mut last = 0u8;
            for age in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
                let s = sev(p.line_outcome(FaultPart::Lr, la, 5, 5 + age));
                assert!(s >= last, "la {la}: outcome healed at age {age}");
                last = s;
            }
        }
    }

    #[test]
    fn flip_probability_tracks_the_poisson_model() {
        // At m = λ·age = ln 2, exactly half the lines should have
        // faulted; check within sampling tolerance.
        let p = plan(1.0);
        let lambda = 1.0 * 128.0 * 8.0 / 26_500.0; // per-ns LR hazard
        let age = (2.0f64.ln() / lambda) as u64;
        let n = 20_000u64;
        let faulted = (0..n)
            .filter(|&la| p.line_outcome(FaultPart::Lr, la, 0, age) != FaultOutcome::Clean)
            .count() as f64;
        let frac = faulted / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "faulted fraction {frac}");
    }

    #[test]
    fn hr_part_faults_less_than_lr() {
        // Same rate, but HR's 4 ms retention dilutes the per-ns hazard
        // ~150× relative to LR's 26.5 µs.
        // Age 100 ns: LR accumulates m ≈ 1.9 while HR sits at m ≈ 0.013.
        let p = plan(0.5);
        let n = 30_000u64;
        let count = |part| {
            (0..n)
                .filter(|&la| p.line_outcome(part, la, 0, 100) != FaultOutcome::Clean)
                .count()
        };
        let lr = count(FaultPart::Lr);
        let hr = count(FaultPart::Hr);
        assert!(
            lr > hr * 10,
            "LR faults ({lr}) should dwarf HR faults ({hr})"
        );
    }

    #[test]
    fn predicate_rates_are_calibrated() {
        let p = plan(0.3);
        let n = 50_000u64;
        let hits = (0..n).filter(|&la| p.drop_refresh(la, 1234)).count() as f64;
        let frac = hits / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn uniform_sets_every_mechanism() {
        let c = FaultConfig::uniform(9, 0.25);
        assert_eq!(c.seed, 9);
        assert!(c.is_enabled());
        for r in [
            c.flip_rate,
            c.refresh_drop_rate,
            c.buffer_stall_rate,
            c.bank_fault_rate,
        ] {
            assert_eq!(r, 0.25);
        }
        assert!(!FaultConfig::disabled().is_enabled());
        assert_eq!(FaultConfig::default(), FaultConfig::disabled());
    }
}
