//! Corruption property suite for on-disk store entries, driven through
//! the full file-backed [`Store`] API (the in-lib tests cover the pure
//! `decode_entry` layer; this suite proves the same guarantees hold all
//! the way through `get`/`put`/quarantine on a real directory):
//!
//! * truncating a committed entry at **every** byte boundary yields a
//!   typed corruption verdict — never a panic, never a bogus hit;
//! * flipping **any single byte** of a committed entry is detected;
//! * every detection quarantines the damaged file, frees the slot for a
//!   clean recompute, and the recomputed entry round-trips exactly.

use std::fs;
use std::path::PathBuf;

use sttgpu_store::{Fetch, Key, Store, ENTRY_OVERHEAD};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sttgpu-store-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn test_key(n: u8) -> Key {
    let mut bytes = [0u8; 16];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = n.wrapping_add(i as u8);
    }
    Key(bytes)
}

/// A payload exercising all byte values, including runs of zeros.
fn test_payload() -> Vec<u8> {
    let mut p: Vec<u8> = (0u8..=255).collect();
    p.extend_from_slice(&[0; 16]);
    p
}

#[test]
fn every_truncation_of_a_committed_entry_is_detected() {
    let dir = fresh_dir("truncate");
    let store = Store::open(&dir).expect("open");
    let key = test_key(1);
    let payload = test_payload();
    store.put(&key, &payload).expect("put");
    let path = store.entry_path(&key);
    let full = fs::read(&path).expect("read entry");
    assert_eq!(full.len(), ENTRY_OVERHEAD + payload.len());

    let mut quarantined = 0;
    for cut in 0..full.len() {
        fs::write(&path, &full[..cut]).expect("write truncated entry");
        match store.get(&key).expect("store machinery must not fail") {
            Fetch::Corrupt(e) => {
                assert!(
                    e.is_corruption(),
                    "cut at {cut}: {e} must read as corruption"
                );
                quarantined += 1;
            }
            Fetch::Hit(_) => panic!("truncation to {cut}/{} bytes served a hit", full.len()),
            // The zero-byte file decodes as truncated too, never a miss.
            Fetch::Miss => panic!("truncation to {cut} bytes read as a miss"),
        }
    }
    assert_eq!(store.quarantined_count(), quarantined);
    // Every detection freed the slot: a rewrite serves clean again.
    store.put(&key, &payload).expect("re-put");
    match store.get(&key).expect("get") {
        Fetch::Hit(p) => assert_eq!(p, payload),
        other => panic!("recomputed entry must hit, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_byte_flip_of_a_committed_entry_is_detected() {
    let dir = fresh_dir("flip");
    let store = Store::open(&dir).expect("open");
    let key = test_key(2);
    let payload = test_payload();
    store.put(&key, &payload).expect("put");
    let path = store.entry_path(&key);
    let full = fs::read(&path).expect("read entry");

    for pos in 0..full.len() {
        for flip in [0x01u8, 0x80] {
            let mut bad = full.clone();
            bad[pos] ^= flip;
            fs::write(&path, &bad).expect("write corrupted entry");
            match store.get(&key).expect("store machinery must not fail") {
                Fetch::Corrupt(e) => {
                    assert!(e.is_corruption(), "flip {flip:#04x} at {pos}: {e}");
                }
                Fetch::Hit(_) => panic!("flip {flip:#04x} at byte {pos} went undetected"),
                Fetch::Miss => panic!("flip {flip:#04x} at byte {pos} read as a miss"),
            }
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_and_oversized_entries_are_corruption_not_crashes() {
    let dir = fresh_dir("foreign");
    let store = Store::open(&dir).expect("open");
    let key = test_key(3);
    let payload = test_payload();
    store.put(&key, &payload).expect("put");
    let path = store.entry_path(&key);
    let full = fs::read(&path).expect("read entry");

    // A whole different file under the entry's name.
    fs::write(&path, b"not an entry at all").expect("write");
    assert!(matches!(store.get(&key).expect("get"), Fetch::Corrupt(_)));

    // The right entry with trailing garbage appended.
    let mut padded = full.clone();
    padded.extend_from_slice(b"xxxx");
    store.put(&key, &payload).expect("re-put");
    fs::write(&path, &padded).expect("write");
    assert!(matches!(store.get(&key).expect("get"), Fetch::Corrupt(_)));

    // An entry committed under one key, renamed to another key's slot.
    let other = test_key(4);
    store.put(&other, &payload).expect("put other");
    fs::rename(store.entry_path(&other), store.entry_path(&key)).expect("cross-rename");
    assert!(matches!(store.get(&key).expect("get"), Fetch::Corrupt(_)));
    fs::remove_dir_all(&dir).ok();
}
