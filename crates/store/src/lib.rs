//! Crash-safe, content-addressed on-disk result store.
//!
//! A [`Store`] maps 128-bit [`Key`]s (stable hashes of whatever identifies
//! a result — build one with [`StableHasher`]) to opaque payload bytes.
//! It is designed for the experiment harness's "compute once, reuse across
//! invocations" discipline, so every design choice favours *never trusting
//! its own bytes*:
//!
//! * **Versioned entries.** Every entry file carries a magic, a format
//!   version, the full key it claims to hold, the payload length and a
//!   checksum over everything before the checksum itself. A reader
//!   validates all of it before handing a single payload byte out.
//! * **Atomic commits.** Writers write a unique temp file in the store
//!   directory and `rename` it into place; a crash mid-write leaves a
//!   temp file (garbage-collected on the next writer open), never a torn
//!   entry under a live name.
//! * **Typed corruption.** Every way an entry can be wrong surfaces as a
//!   [`StoreError`] — truncation at any byte, a flip in any field, an
//!   unknown version — never a panic. [`Store::get`] distinguishes
//!   *corruption* (the entry is quarantined and reported so the caller
//!   recomputes) from *infrastructure failure* (I/O errors the caller
//!   should degrade on).
//! * **Single-writer lock.** [`Store::open`] takes a lock file holding
//!   the writer's PID, kept fresh by a heartbeat thread. A second
//!   concurrent open observes a live lock and falls back to **read-only**
//!   mode: it serves hits from committed entries (renames are atomic, so
//!   a committed entry is always whole) and silently skips writes. A lock
//!   whose process is dead — or whose heartbeat went stale — is broken
//!   and taken over.
//!
//! The [`codec`] module provides the little-endian encode/decode helpers
//! payload serializers build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub mod codec;

/// File magic identifying a store entry.
pub const MAGIC: [u8; 8] = *b"STTGSTO\0";

/// Newest entry-format version this crate writes and understands.
pub const VERSION: u16 = 1;

/// Fixed byte cost of an entry around its payload:
/// magic (8) + version (2) + key (16) + payload length (8) + checksum (8).
pub const ENTRY_OVERHEAD: usize = 8 + 2 + 16 + 8 + 8;

/// Seconds without a heartbeat after which a lock whose owner cannot be
/// probed is considered stale.
const STALE_LOCK_SECS: u64 = 120;

/// Heartbeat refresh cadence, seconds (kept well under the stale window).
const HEARTBEAT_SECS: u64 = 15;

/// A 128-bit content key. Produce one with [`StableHasher`]; the hex
/// rendering doubles as the entry's file name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(pub [u8; 16]);

impl Key {
    /// Lower-case hex rendering (32 chars), used as the entry file stem.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a step. Multiplication by an odd constant and xor are both
/// bijective on `u64`, so any single-byte change in the input is
/// guaranteed to change the final value.
fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

/// Checksum over a byte slice: FNV-1a with the length folded in, so a
/// truncated-but-prefix-consistent stream still mismatches.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = fnv_step(h, b);
    }
    for b in (bytes.len() as u64).to_le_bytes() {
        h = fnv_step(h, b);
    }
    h
}

/// A stable (process-, platform- and run-independent) 128-bit hasher for
/// building [`Key`]s from typed fields. Two independently seeded FNV-1a
/// lanes; strings and byte slices are length-prefixed so field boundaries
/// cannot alias (`("ab", "c")` never collides with `("a", "bc")`).
#[derive(Debug, Clone)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

impl StableHasher {
    /// A hasher seeded with a domain-separation tag (e.g. a format name).
    pub fn new(tag: &str) -> Self {
        let mut h = StableHasher {
            lo: FNV_OFFSET,
            // A different odd offset decorrelates the second lane.
            hi: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        };
        h.str(tag);
        h
    }

    fn byte(&mut self, b: u8) {
        self.lo = fnv_step(self.lo, b);
        self.hi = fnv_step(self.hi, b.wrapping_add(0x5f));
    }

    /// Feeds raw bytes (length-prefixed).
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.u64(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
        self
    }

    /// Feeds a string (length-prefixed UTF-8 bytes).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Feeds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Feeds a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.u64(u64::from(v))
    }

    /// Feeds a bool.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(u64::from(v))
    }

    /// Feeds an `f64` by bit pattern (keys are built from *constructed*
    /// plan fields, so bit equality is the right identity).
    pub fn f64_bits(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Finalizes into a [`Key`].
    pub fn finish(&self) -> Key {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&self.lo.to_le_bytes());
        k[8..].copy_from_slice(&self.hi.to_le_bytes());
        Key(k)
    }
}

/// Every way the store can fail. Corruption modes are typed so callers
/// can quarantine-and-recompute; infrastructure modes ([`StoreError::Io`],
/// [`StoreError::BadMeta`]) tell callers to degrade to memory-only
/// operation.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The rendered error.
        what: String,
    },
    /// The entry does not start with [`MAGIC`].
    BadMagic,
    /// The entry's format version is zero or newer than this build.
    UnsupportedVersion(u16),
    /// The entry's stored key is not the key it was looked up under.
    KeyMismatch,
    /// The entry ends before its own framing says it should.
    Truncated,
    /// The entry has bytes after its checksum.
    TrailingBytes,
    /// The entry's checksum does not match its contents.
    BadChecksum {
        /// Checksum stored in the entry.
        stored: u64,
        /// Checksum recomputed over the entry bytes.
        computed: u64,
    },
    /// The store's meta file exists but does not describe a compatible
    /// store (wrong tool, wrong version, or mangled bytes).
    BadMeta {
        /// What was wrong with it.
        what: String,
    },
    /// A payload failed its domain-level decode after passing the
    /// checksum — reserved for callers layering codecs on top.
    Payload {
        /// What the payload decoder rejected.
        what: String,
    },
}

impl StoreError {
    /// Whether this error means *the entry's bytes are bad* (quarantine
    /// and recompute) as opposed to *the store machinery failed*
    /// (degrade).
    pub fn is_corruption(&self) -> bool {
        !matches!(self, StoreError::Io { .. } | StoreError::BadMeta { .. })
    }

    fn io(path: &Path, e: io::Error) -> Self {
        StoreError::Io {
            path: path.display().to_string(),
            what: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, what } => write!(f, "store i/o error on {path}: {what}"),
            StoreError::BadMagic => write!(f, "not a store entry (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported entry version {v} (this build reads <= {VERSION})"
                )
            }
            StoreError::KeyMismatch => write!(f, "entry's stored key does not match its name"),
            StoreError::Truncated => write!(f, "entry truncated"),
            StoreError::TrailingBytes => write!(f, "entry has trailing bytes after its checksum"),
            StoreError::BadChecksum { stored, computed } => write!(
                f,
                "entry checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            StoreError::BadMeta { what } => write!(f, "store meta file is not usable: {what}"),
            StoreError::Payload { what } => write!(f, "entry payload failed to decode: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Serializes one entry: header, payload, trailing checksum.
pub fn encode_entry(key: &Key, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ENTRY_OVERHEAD + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&key.0);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates one entry's bytes and returns its payload. Pure over the
/// byte slice: every corruption mode yields a typed error, never a panic.
/// When `expect` is given, the entry's stored key must match it.
pub fn decode_entry(bytes: &[u8], expect: Option<&Key>) -> Result<Vec<u8>, StoreError> {
    if bytes.len() < 8 {
        // Can't even tell what this is; a prefix of the magic counts as
        // a truncated entry, anything else as a foreign file.
        return if MAGIC.starts_with(bytes) {
            Err(StoreError::Truncated)
        } else {
            Err(StoreError::BadMagic)
        };
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < ENTRY_OVERHEAD {
        return Err(StoreError::Truncated);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version == 0 || version > VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut key = [0u8; 16];
    key.copy_from_slice(&bytes[10..26]);
    if let Some(expect) = expect {
        if key != expect.0 {
            return Err(StoreError::KeyMismatch);
        }
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[26..34]);
    let payload_len = u64::from_le_bytes(len8);
    let Ok(payload_len) = usize::try_from(payload_len) else {
        return Err(StoreError::Truncated);
    };
    let Some(total) = payload_len.checked_add(ENTRY_OVERHEAD) else {
        return Err(StoreError::Truncated);
    };
    if bytes.len() < total {
        return Err(StoreError::Truncated);
    }
    if bytes.len() > total {
        return Err(StoreError::TrailingBytes);
    }
    let body = &bytes[..total - 8];
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&bytes[total - 8..]);
    let stored = u64::from_le_bytes(sum8);
    let computed = checksum(body);
    if stored != computed {
        return Err(StoreError::BadChecksum { stored, computed });
    }
    Ok(body[ENTRY_OVERHEAD - 8..].to_vec())
}

/// What [`Store::get`] found under a key.
#[derive(Debug)]
pub enum Fetch {
    /// A valid entry; here is its payload.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// An entry existed but its bytes were bad; it has been moved to the
    /// quarantine directory and the caller should recompute.
    Corrupt(StoreError),
}

/// Writer-lock guard: owns the lock file and the heartbeat thread that
/// keeps its mtime fresh.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    heartbeat: Option<JoinHandle<()>>,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        let _ = fs::remove_file(&self.path);
    }
}

fn lock_contents() -> String {
    format!("pid {}\n", std::process::id())
}

/// Whether the process named in a lock file can be shown to be dead.
/// Returns `None` when liveness cannot be determined on this platform.
fn lock_owner_dead(contents: &str) -> Option<bool> {
    let pid: u64 = contents.strip_prefix("pid ")?.trim().parse().ok()?;
    if !Path::new("/proc").is_dir() {
        return None;
    }
    Some(!Path::new(&format!("/proc/{pid}")).exists())
}

/// Whether an existing lock file is stale and may be broken: its owner is
/// provably dead, or (when liveness is unknowable) its heartbeat mtime is
/// older than [`STALE_LOCK_SECS`].
fn lock_is_stale(path: &Path) -> bool {
    if let Ok(contents) = fs::read_to_string(path) {
        if let Some(dead) = lock_owner_dead(&contents) {
            return dead;
        }
    }
    match fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => match mtime.elapsed() {
            Ok(age) => age.as_secs() > STALE_LOCK_SECS,
            // mtime in the future: clock skew, treat as fresh.
            Err(_) => false,
        },
        // The lock vanished between the existence check and here.
        Err(_) => true,
    }
}

fn try_acquire_lock(path: &Path) -> Result<Option<LockGuard>, StoreError> {
    for _ in 0..4 {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut f) => {
                f.write_all(lock_contents().as_bytes())
                    .map_err(|e| StoreError::io(path, e))?;
                let stop = Arc::new(AtomicBool::new(false));
                let beat_stop = Arc::clone(&stop);
                let beat_path = path.to_path_buf();
                let heartbeat = std::thread::Builder::new()
                    .name("store-heartbeat".into())
                    .spawn(move || {
                        let mut since_touch = 0u64;
                        while !beat_stop.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(200));
                            since_touch += 200;
                            if since_touch >= HEARTBEAT_SECS * 1000 {
                                since_touch = 0;
                                // Rewriting the contents refreshes mtime;
                                // the single small write is effectively
                                // atomic for the readers that parse it.
                                let _ = fs::write(&beat_path, lock_contents());
                            }
                        }
                    })
                    .map_err(|e| StoreError::Io {
                        path: path.display().to_string(),
                        what: format!("cannot spawn heartbeat thread: {e}"),
                    })?;
                return Ok(Some(LockGuard {
                    path: path.to_path_buf(),
                    stop,
                    heartbeat: Some(heartbeat),
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if lock_is_stale(path) {
                    // Break the stale lock and retry the exclusive create.
                    let _ = fs::remove_file(path);
                    continue;
                }
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io(path, e)),
        }
    }
    Ok(None)
}

const META_LINE: &str = "sttgpu-store v1\n";

/// A content-addressed result store rooted at one directory.
///
/// Layout:
///
/// ```text
/// ROOT/STORE.meta        format stamp, written once
/// ROOT/LOCK              single-writer lock (PID + heartbeat mtime)
/// ROOT/objects/<hex>.ent committed entries, named by key
/// ROOT/quarantine/...    corrupt entries moved aside, never reread
/// ```
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    objects: PathBuf,
    quarantine: PathBuf,
    lock: Option<LockGuard>,
    tmp_counter: AtomicU64,
}

impl Store {
    /// Opens (creating if necessary) the store at `root`. Takes the
    /// writer lock when free or stale; otherwise the store opens
    /// **read-only** ([`read_only`](Store::read_only)) and
    /// [`put`](Store::put) becomes a no-op.
    ///
    /// Fails with [`StoreError::Io`] when the directories cannot be
    /// created and [`StoreError::BadMeta`] when `root` already holds
    /// something that is not a compatible store — both are *degrade*
    /// conditions for callers, not panics.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        let objects = root.join("objects");
        let quarantine = root.join("quarantine");
        for dir in [root, &objects, &quarantine] {
            fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        }
        let meta = root.join("STORE.meta");
        match fs::read_to_string(&meta) {
            Ok(text) => {
                if text != META_LINE {
                    return Err(StoreError::BadMeta {
                        what: format!(
                            "expected {:?}, found {:?}",
                            META_LINE.trim(),
                            text.lines().next().unwrap_or("")
                        ),
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                write_atomic(&meta, META_LINE.as_bytes(), &objects, 0)?;
            }
            Err(e) => return Err(StoreError::io(&meta, e)),
        }
        let lock = try_acquire_lock(&root.join("LOCK"))?;
        let store = Store {
            root: root.to_path_buf(),
            objects,
            quarantine,
            lock,
            tmp_counter: AtomicU64::new(1),
        };
        if !store.read_only() {
            store.sweep_temp_files();
        }
        Ok(store)
    }

    /// Whether this handle lost the single-writer race and serves reads
    /// only.
    pub fn read_only(&self) -> bool {
        self.lock.is_none()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The committed path an entry for `key` lives at.
    pub fn entry_path(&self, key: &Key) -> PathBuf {
        self.objects.join(format!("{}.ent", key.hex()))
    }

    /// Removes temp files abandoned by crashed writers. Only the lock
    /// holder sweeps: a temp file is only ever written by a lock holder,
    /// so any temp file seen by the *current* holder is dead.
    fn sweep_temp_files(&self) {
        let Ok(entries) = fs::read_dir(&self.objects) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().starts_with(".tmp-") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Looks up `key`. Corrupt entries are moved to the quarantine
    /// directory and reported as [`Fetch::Corrupt`] so the caller
    /// recomputes; an `Err` means the store machinery itself failed and
    /// the caller should degrade.
    pub fn get(&self, key: &Key) -> Result<Fetch, StoreError> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Fetch::Miss),
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        match decode_entry(&bytes, Some(key)) {
            Ok(payload) => Ok(Fetch::Hit(payload)),
            Err(e) => {
                self.quarantine_entry(key);
                Ok(Fetch::Corrupt(e))
            }
        }
    }

    /// Moves the entry under `key` (if any) into the quarantine
    /// directory, never to be read again. Also used by callers whose
    /// *payload*-level decode failed after the checksum passed.
    pub fn quarantine_entry(&self, key: &Key) {
        let src = self.entry_path(key);
        // A unique destination so repeated quarantines never collide.
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let dst = self
            .quarantine
            .join(format!("{}-{}-{n}.ent", key.hex(), std::process::id()));
        if fs::rename(&src, &dst).is_err() {
            // Rename can fail across filesystems or on exotic setups;
            // deleting still protects future reads.
            let _ = fs::remove_file(&src);
        }
    }

    /// Number of quarantined entry files currently on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(&self.quarantine)
            .map(|d| d.flatten().count())
            .unwrap_or(0)
    }

    /// Commits `payload` under `key` atomically (write temp, rename).
    /// Returns `Ok(false)` without writing when the store is read-only.
    /// An `Err` means the write could not be committed (disk full,
    /// permissions): the caller should degrade, the store is unharmed.
    pub fn put(&self, key: &Key, payload: &[u8]) -> Result<bool, StoreError> {
        if self.read_only() {
            return Ok(false);
        }
        let bytes = encode_entry(key, payload);
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        write_atomic(&self.entry_path(key), &bytes, &self.objects, n)?;
        Ok(true)
    }

    /// Number of committed entries currently on disk.
    pub fn entry_count(&self) -> usize {
        fs::read_dir(&self.objects)
            .map(|d| {
                d.flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "ent"))
                    .count()
            })
            .unwrap_or(0)
    }
}

/// Writes `bytes` to `path` atomically: a unique temp file in `tmp_dir`
/// (same filesystem, so the rename is atomic), then rename into place.
fn write_atomic(path: &Path, bytes: &[u8], tmp_dir: &Path, n: u64) -> Result<(), StoreError> {
    let tmp = tmp_dir.join(format!(".tmp-{}-{n}", std::process::id()));
    let write = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::io(&tmp, e));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::io(path, e));
    }
    Ok(())
}

/// Reads and validates the entry file at `path` against `key`.
/// Convenience for tests and tooling; [`Store::get`] is the quarantining
/// front door.
pub fn read_entry_file(path: &Path, key: &Key) -> Result<Vec<u8>, StoreError> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io(path, e))?;
    decode_entry(&bytes, Some(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sttgpu-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key_of(s: &str) -> Key {
        StableHasher::new("test").str(s).finish()
    }

    #[test]
    fn stable_hasher_is_deterministic_and_sensitive() {
        let a = StableHasher::new("t").str("x").u64(7).finish();
        let b = StableHasher::new("t").str("x").u64(7).finish();
        assert_eq!(a, b);
        assert_ne!(a, StableHasher::new("t").str("x").u64(8).finish());
        assert_ne!(a, StableHasher::new("u").str("x").u64(7).finish());
        // Length prefixing keeps field boundaries from aliasing.
        let ab_c = StableHasher::new("t").str("ab").str("c").finish();
        let a_bc = StableHasher::new("t").str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn key_hex_is_32_lowercase_chars() {
        let h = key_of("k").hex();
        assert_eq!(h.len(), 32);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn entry_round_trips() {
        let key = key_of("roundtrip");
        for payload in [&b""[..], &b"x"[..], &[0u8; 1000][..]] {
            let entry = encode_entry(&key, payload);
            assert_eq!(decode_entry(&entry, Some(&key)).expect("decode"), payload);
            assert_eq!(decode_entry(&entry, None).expect("decode"), payload);
        }
    }

    #[test]
    fn wrong_key_is_typed() {
        let entry = encode_entry(&key_of("a"), b"payload");
        let err = decode_entry(&entry, Some(&key_of("b"))).expect_err("must fail");
        assert!(matches!(err, StoreError::KeyMismatch), "{err}");
    }

    #[test]
    fn every_truncation_is_typed() {
        let entry = encode_entry(&key_of("trunc"), b"some payload bytes");
        for cut in 0..entry.len() {
            let err = decode_entry(&entry[..cut], Some(&key_of("trunc")))
                .expect_err("shorter entry must fail");
            assert!(
                matches!(
                    err,
                    StoreError::Truncated | StoreError::BadMagic | StoreError::BadChecksum { .. }
                ),
                "cut {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_typed() {
        let key = key_of("flip");
        let entry = encode_entry(&key, b"payload under test");
        for pos in 0..entry.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = entry.clone();
                bad[pos] ^= flip;
                assert!(
                    decode_entry(&bad, Some(&key)).is_err(),
                    "flip at {pos} ({flip:#x}) went undetected"
                );
            }
        }
    }

    #[test]
    fn store_put_get_round_trips() {
        let root = tmp_root("putget");
        let store = Store::open(&root).expect("open");
        assert!(!store.read_only());
        let key = key_of("entry");
        assert!(matches!(store.get(&key).expect("get"), Fetch::Miss));
        assert!(store.put(&key, b"hello").expect("put"));
        match store.get(&key).expect("get") {
            Fetch::Hit(p) => assert_eq!(p, b"hello"),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(store.entry_count(), 1);
        drop(store);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_reported() {
        let root = tmp_root("quarantine");
        let store = Store::open(&root).expect("open");
        let key = key_of("corrupt-me");
        store.put(&key, b"precious bytes").expect("put");
        let path = store.entry_path(&key);
        let mut bytes = fs::read(&path).expect("read entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).expect("rewrite");
        match store.get(&key).expect("get") {
            Fetch::Corrupt(e) => assert!(e.is_corruption(), "{e}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt entry must leave the objects dir");
        assert_eq!(store.quarantined_count(), 1);
        // The next lookup is a clean miss: recompute territory.
        assert!(matches!(store.get(&key).expect("get"), Fetch::Miss));
        drop(store);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn second_open_is_read_only_and_skips_writes() {
        let root = tmp_root("lock");
        let writer = Store::open(&root).expect("open writer");
        assert!(!writer.read_only());
        let key = key_of("shared");
        writer.put(&key, b"from writer").expect("put");
        let reader = Store::open(&root).expect("open reader");
        assert!(reader.read_only(), "live lock must force read-only");
        assert!(!reader.put(&key_of("other"), b"x").expect("put"));
        match reader.get(&key).expect("get") {
            Fetch::Hit(p) => assert_eq!(p, b"from writer"),
            other => panic!("expected hit, got {other:?}"),
        }
        drop(reader);
        // The writer still holds the lock.
        assert!(root.join("LOCK").exists());
        drop(writer);
        assert!(!root.join("LOCK").exists(), "drop must release the lock");
        let writer2 = Store::open(&root).expect("reopen");
        assert!(!writer2.read_only());
        drop(writer2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn dead_pid_lock_is_broken() {
        let root = tmp_root("stale");
        fs::create_dir_all(&root).expect("mkdir");
        // A PID that cannot be alive (kernel pid_max is far below this).
        fs::write(root.join("LOCK"), "pid 4294000001\n").expect("plant lock");
        let store = Store::open(&root).expect("open");
        if Path::new("/proc").is_dir() {
            assert!(!store.read_only(), "dead owner's lock must be broken");
        }
        drop(store);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mangled_meta_is_typed() {
        let root = tmp_root("meta");
        fs::create_dir_all(&root).expect("mkdir");
        fs::write(root.join("STORE.meta"), "something else\n").expect("plant meta");
        let err = Store::open(&root).expect_err("must fail");
        assert!(matches!(err, StoreError::BadMeta { .. }), "{err}");
        assert!(!err.is_corruption(), "meta failure is a degrade condition");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn crashed_writer_temp_files_are_swept() {
        let root = tmp_root("sweep");
        {
            let store = Store::open(&root).expect("open");
            store.put(&key_of("live"), b"live").expect("put");
        }
        let stray = root.join("objects").join(".tmp-99999-7");
        fs::write(&stray, b"half-written").expect("plant temp");
        let store = Store::open(&root).expect("reopen");
        assert!(!stray.exists(), "writer open must sweep stale temp files");
        assert_eq!(store.entry_count(), 1);
        drop(store);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::Io {
                    path: "/x".into(),
                    what: "denied".into(),
                },
                "i/o error",
            ),
            (StoreError::BadMagic, "bad magic"),
            (StoreError::UnsupportedVersion(9), "version 9"),
            (StoreError::KeyMismatch, "does not match"),
            (StoreError::Truncated, "truncated"),
            (StoreError::TrailingBytes, "trailing"),
            (
                StoreError::BadChecksum {
                    stored: 1,
                    computed: 2,
                },
                "checksum mismatch",
            ),
            (StoreError::BadMeta { what: "bad".into() }, "meta"),
            (StoreError::Payload { what: "bad".into() }, "payload"),
        ];
        for (err, fragment) in cases {
            assert!(
                err.to_string().contains(fragment),
                "{err} missing {fragment}"
            );
        }
    }
}
