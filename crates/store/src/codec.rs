//! Little-endian encode/decode helpers for store payloads.
//!
//! Payloads are validated by the entry checksum *before* they reach a
//! decoder, so a [`CodecError`] normally means a versioning bug rather
//! than corruption — but decoders still never panic: every read is
//! bounds-checked and every failure is typed, mirroring the discipline of
//! the entry format itself.

use std::fmt;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the decoder had reached.
    pub offset: usize,
    /// What it expected there.
    pub what: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload offset {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for CodecError {}

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a collection length.
    pub fn len(&mut self, n: usize) -> &mut Self {
        self.u64(n as u64)
    }

    /// Appends a length-prefixed string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }
}

/// Cursor-based payload decoder. Every accessor is bounds-checked.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn fail(&self, what: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.pos,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.fail(format!("{n} more bytes")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.fail(format!("bool byte, got {b:#04x}"))),
        }
    }

    /// Reads a collection length. Every encoded element occupies at
    /// least one byte, so a length exceeding the bytes remaining is
    /// rejected up front — a mangled length can never drive a huge
    /// allocation.
    #[allow(clippy::len_without_is_empty)] // reads a length prefix; not a container
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let remaining = self.buf.len() - self.pos;
        match usize::try_from(n) {
            Ok(n) if n <= remaining => Ok(n),
            _ => Err(self.fail(format!(
                "plausible length ({} bytes left), got {n}",
                remaining
            ))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("valid UTF-8"))
    }

    /// Whether the cursor consumed the whole buffer.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts the buffer is fully consumed — decoders call this last so
    /// trailing bytes (a version skew symptom) are caught.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.finished() {
            Ok(())
        } else {
            Err(self.fail(format!(
                "end of payload, {} bytes left",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut e = Enc::new();
        e.u8(7)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX)
            .f64(-0.25)
            .bool(true)
            .bool(false)
            .str("hello κόσμε")
            .len(3)
            .u8(1)
            .u8(2)
            .u8(3);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap(), -0.25);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "hello κόσμε");
        assert_eq!(d.len().unwrap(), 3);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u8().unwrap(), 2);
        assert_eq!(d.u8().unwrap(), 3);
        d.expect_end().unwrap();
    }

    #[test]
    fn short_reads_are_typed() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert!(d.u64().is_err());
        let mut d = Dec::new(&[]);
        assert!(d.u8().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_typed() {
        let mut d = Dec::new(&[9]);
        assert!(d.bool().is_err());
        let mut e = Enc::new();
        e.len(2).u8(0xFF).u8(0xFE);
        let bytes = e.finish();
        assert!(Dec::new(&bytes).str().is_err());
    }

    #[test]
    fn absurd_length_is_rejected_without_allocating() {
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let bytes = e.finish();
        assert!(Dec::new(&bytes).len().is_err());
    }

    #[test]
    fn trailing_bytes_are_caught() {
        let mut e = Enc::new();
        e.u8(1).u8(2);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert!(d.expect_end().is_err());
    }
}
