//! End-to-end integration tests spanning every crate: workloads drive the
//! simulator over each LLC model and the paper's qualitative claims are
//! asserted on the results.

use sttgpu::core::LlcModel;
use sttgpu::experiments::configs::{gpu_config, L2Choice};
use sttgpu::experiments::runner::{run, RunPlan};
use sttgpu::sim::Gpu;
use sttgpu::stats::WriteVariation;
use sttgpu::workloads::suite;

fn plan() -> RunPlan {
    RunPlan {
        scale: 0.3,
        max_cycles: 8_000_000,
        check: false,
        ..RunPlan::full()
    }
}

#[test]
fn every_workload_completes_on_every_configuration() {
    let quick = RunPlan {
        scale: 0.05,
        max_cycles: 8_000_000,
        check: false,
        ..RunPlan::full()
    };
    for w in suite::all() {
        for choice in L2Choice::ALL {
            let out = run(choice, &w, &quick);
            assert!(
                out.metrics.finished,
                "{} did not finish on {}",
                w.name,
                choice.label()
            );
            assert_eq!(out.metrics.kernels_skipped, 0, "{} skipped kernels", w.name);
            assert!(out.metrics.instructions > 0);
            assert!(
                out.metrics.l2.accesses() > 0,
                "{} generated no L2 traffic",
                w.name
            );
        }
    }
}

#[test]
fn runs_are_deterministic_across_repetitions() {
    let w = suite::by_name("kmeans").expect("kmeans");
    let a = run(L2Choice::TwoPartC1, &w, &plan());
    let b = run(L2Choice::TwoPartC1, &w, &plan());
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.metrics.instructions, b.metrics.instructions);
    let (sa, sb) = (a.two_part.expect("tp"), b.two_part.expect("tp"));
    assert_eq!(sa, sb, "two-part statistics must be bit-identical");
}

#[test]
fn all_configs_commit_the_same_instructions() {
    // The workload trace is architecture-independent; every L2 design must
    // execute exactly the same work.
    let w = suite::by_name("lud").expect("lud");
    let counts: Vec<u64> = L2Choice::ALL
        .iter()
        .map(|&c| run(c, &w, &plan()).metrics.instructions)
        .collect();
    assert!(
        counts.windows(2).all(|p| p[0] == p[1]),
        "instruction counts diverge: {counts:?}"
    );
}

#[test]
fn cache_friendly_workload_rewards_capacity() {
    // bfs overflows the 384 KB SRAM L2 but fits the 4x STT designs: hit
    // rate and IPC must rise on C1.
    let w = suite::by_name("bfs").expect("bfs");
    let base = run(L2Choice::SramBaseline, &w, &plan());
    let c1 = run(L2Choice::TwoPartC1, &w, &plan());
    assert!(
        c1.metrics.l2.hit_rate() > base.metrics.l2.hit_rate() + 0.2,
        "hit rates: base {:.3}, C1 {:.3}",
        base.metrics.l2.hit_rate(),
        c1.metrics.l2.hit_rate()
    );
    assert!(
        c1.metrics.speedup_over(&base.metrics) > 1.5,
        "C1 speedup {:.2} too small",
        c1.metrics.speedup_over(&base.metrics)
    );
    assert!(
        c1.metrics.dram_reads < base.metrics.dram_reads / 2,
        "capacity must cut DRAM traffic"
    );
}

#[test]
fn write_heavy_workload_punishes_uniform_stt_but_not_c1() {
    let w = suite::by_name("nw").expect("nw");
    let base = run(L2Choice::SramBaseline, &w, &plan());
    let stt = run(L2Choice::SttBaseline, &w, &plan());
    let c1 = run(L2Choice::TwoPartC1, &w, &plan());
    let stt_speedup = stt.metrics.speedup_over(&base.metrics);
    let c1_speedup = c1.metrics.speedup_over(&base.metrics);
    assert!(
        stt_speedup < 0.9,
        "uniform STT must regress, got {stt_speedup:.3}"
    );
    assert!(
        c1_speedup > 0.97,
        "C1 must not regress, got {c1_speedup:.3}"
    );
}

#[test]
fn register_limited_workload_gains_from_c2_register_file() {
    // Needs the full-size grid so occupancy binds on every SM.
    let full = RunPlan {
        scale: 1.0,
        max_cycles: 20_000_000,
        check: false,
        ..RunPlan::full()
    };
    let w = suite::by_name("srad_v2").expect("srad_v2");
    let base = run(L2Choice::SramBaseline, &w, &full);
    let c2 = run(L2Choice::TwoPartC2, &w, &full);
    let speedup = c2.metrics.speedup_over(&base.metrics);
    assert!(
        speedup > 1.15,
        "C2 register-file speedup {speedup:.3} too small"
    );
}

#[test]
fn lr_part_captures_the_write_working_set() {
    let w = suite::by_name("kmeans").expect("kmeans");
    let out = run(L2Choice::TwoPartC1, &w, &plan());
    let tp = out.two_part.expect("two-part");
    assert!(
        tp.lr_write_utilization() > 0.9,
        "LR write utilization {:.3}",
        tp.lr_write_utilization()
    );
    assert_eq!(tp.lr_expirations, 0, "no LR data loss under maintenance");
}

#[test]
fn rewrite_intervals_are_overwhelmingly_sub_10us() {
    // The Fig. 6 observation that justifies the 26.5 us LR retention.
    let w = suite::by_name("kmeans").expect("kmeans");
    let out = run(L2Choice::TwoPartC1, &w, &plan());
    let h = out.lr_rewrite_intervals.expect("two-part");
    assert!(h.total() > 500, "too few rewrites observed: {}", h.total());
    assert!(
        h.cumulative_fraction_at(10_000) > 0.9,
        "fast-rewrite fraction {:.3}",
        h.cumulative_fraction_at(10_000)
    );
}

#[test]
fn write_variation_separates_concentrated_from_even_writers() {
    let hot = run(
        L2Choice::SramBaseline,
        &suite::by_name("mri_gridding").expect("w"),
        &plan(),
    );
    let even = run(
        L2Choice::SramBaseline,
        &suite::by_name("cfd").expect("w"),
        &plan(),
    );
    let wv_hot = WriteVariation::from_counts(&hot.write_matrix);
    let wv_even = WriteVariation::from_counts(&even.write_matrix);
    assert!(
        wv_hot.inter_set + wv_hot.intra_set > 3.0 * (wv_even.inter_set + wv_even.intra_set),
        "hot {wv_hot:?} vs even {wv_even:?}"
    );
}

#[test]
fn total_l2_power_drops_on_the_two_part_designs() {
    // Leakage dominates the SRAM L2; the STT designs trade a little
    // dynamic power for a large leakage cut (Fig. 8c).
    let w = suite::by_name("lud").expect("lud");
    let base = run(L2Choice::SramBaseline, &w, &plan());
    let c1 = run(L2Choice::TwoPartC1, &w, &plan());
    let c2 = run(L2Choice::TwoPartC2, &w, &plan());
    let base_mw = base.metrics.l2_total_power_mw();
    assert!(c1.metrics.l2_total_power_mw() < base_mw);
    assert!(c2.metrics.l2_total_power_mw() < base_mw);
}

#[test]
fn two_part_exclusivity_holds_after_a_real_run() {
    let w = suite::by_name("pathfinder").expect("pathfinder");
    let workload = suite::scaled(&w, 0.2);
    let mut gpu = Gpu::new(gpu_config(L2Choice::TwoPartC1));
    gpu.run_workload(&workload, 8_000_000);
    let tp = gpu.llc().as_two_part().expect("two-part");
    // Spot-check a swath of the footprint for dual residency.
    for line in 0..4096u64 {
        let addr = line * 256;
        assert!(
            !(tp.lr_contains(addr) && tp.hr_contains(addr)),
            "line {line} resident in both parts"
        );
    }
}

#[test]
fn energy_ledger_is_consistent_with_traffic() {
    let w = suite::by_name("gaussian").expect("gaussian");
    let out = run(L2Choice::TwoPartC1, &w, &plan());
    let e = &out.metrics.l2_energy;
    assert!(e.dynamic_nj() > 0.0);
    assert!(e.leakage_mw() > 0.0);
    use sttgpu::device::energy::EnergyEvent;
    // Write-heavy-ish workload on a write-optimised cache: data writes
    // must be a visible part of the ledger.
    assert!(e.dynamic_nj_for(EnergyEvent::DataWrite) > 0.0);
    assert!(e.dynamic_nj_for(EnergyEvent::TagLookup) > 0.0);
}

#[test]
fn llc_trait_is_usable_through_the_facade() {
    // Compile-time + behavioural check that the re-exported trait object
    // path works for downstream users.
    let cfg = gpu_config(L2Choice::TwoPartC3);
    let llc = cfg.l2.build(cfg.l2_line_bytes);
    assert_eq!(llc.line_bytes(), 256);
    assert!(llc.as_two_part().is_some());
    assert!(llc.maintenance_interval_ns() < u64::MAX);
}
