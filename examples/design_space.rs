//! Design-space sweep: evaluate all five Table 2 configurations on a few
//! contrasting workloads and print the normalised speedup / power table —
//! a miniature of Fig. 8 you can point at any workload subset.
//!
//! ```text
//! cargo run --release --example design_space [scale] [workload ...]
//! ```

use std::error::Error;

use sttgpu::experiments::configs::L2Choice;
use sttgpu::experiments::runner::{run, RunPlan};
use sttgpu::workloads::suite;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let names: Vec<String> = {
        let explicit: Vec<String> = args
            .iter()
            .filter(|a| a.parse::<f64>().is_err())
            .cloned()
            .collect();
        if explicit.is_empty() {
            // One representative per region.
            vec!["nw".into(), "srad_v2".into(), "kmeans".into(), "bfs".into()]
        } else {
            explicit
        }
    };

    let plan = RunPlan {
        scale,
        max_cycles: 20_000_000,
        check: false,
        ..RunPlan::full()
    };
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9}   (speedup | total power vs SRAM)",
        "workload", "baseline", "STT-RAM", "C1", "C2", "C3"
    );
    for name in &names {
        let workload = suite::by_name(name)
            .ok_or_else(|| format!("unknown workload {name:?}; try {:?}", suite::names()))?;
        let outputs: Vec<_> = L2Choice::ALL
            .iter()
            .map(|&c| run(c, &workload, &plan))
            .collect();
        let base = &outputs[0].metrics;
        let base_power = base.l2_total_power_mw().max(1e-9);
        print!("{name:<14}");
        for out in &outputs {
            print!(
                " {:>4.2}|{:<4.2}",
                out.metrics.speedup_over(base),
                out.metrics.l2_total_power_mw() / base_power
            );
        }
        println!();
    }
    println!(
        "\nRegions: nw = write-heavy insensitive, srad_v2 = register-limited,\n\
         kmeans = register+cache, bfs = cache-friendly. C1 should never lose;\n\
         C2/C3 shine on register-limited work; the uniform STT baseline\n\
         regresses wherever writes dominate."
    );
    Ok(())
}
