//! Quickstart: run one GPGPU workload on the paper's proposed two-part
//! STT-RAM L2 (configuration C1) and on the SRAM baseline, and compare.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [scale]
//! ```

use std::error::Error;

use sttgpu::experiments::configs::{gpu_config, L2Choice};
use sttgpu::sim::Gpu;
use sttgpu::workloads::suite;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("bfs");
    let scale: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0.5);

    let workload = suite::by_name(name)
        .ok_or_else(|| format!("unknown workload {name:?}; try one of {:?}", suite::names()))?;
    let workload = suite::scaled(&workload, scale);
    println!(
        "workload {name} (scale {scale}): {} kernels, {} thread-instructions",
        workload.kernels.len(),
        workload.total_thread_instructions()
    );

    // SRAM baseline GPU (GTX480-like, Table 2).
    let mut baseline_gpu = Gpu::new(gpu_config(L2Choice::SramBaseline));
    let baseline = baseline_gpu.run_workload(&workload, 20_000_000);

    // The proposed two-part L2 at the same silicon area (C1).
    let mut c1_gpu = Gpu::new(gpu_config(L2Choice::TwoPartC1));
    let c1 = c1_gpu.run_workload(&workload, 20_000_000);

    println!("\n                     SRAM baseline      two-part C1");
    println!(
        "IPC                  {:>13.1} {:>16.1}",
        baseline.ipc(),
        c1.ipc()
    );
    println!(
        "L2 hit rate          {:>12.1}% {:>15.1}%",
        baseline.l2.hit_rate() * 100.0,
        c1.l2.hit_rate() * 100.0
    );
    println!(
        "DRAM reads           {:>13} {:>16}",
        baseline.dram_reads, c1.dram_reads
    );
    println!(
        "L2 total power       {:>11.1}mW {:>14.1}mW",
        baseline.l2_total_power_mw(),
        c1.l2_total_power_mw()
    );
    println!(
        "\nC1 speedup over SRAM baseline: {:.2}x",
        c1.speedup_over(&baseline)
    );

    // Peek into the two-part internals.
    if let Some(tp) = c1_gpu.llc().as_two_part() {
        let s = tp.stats();
        println!(
            "C1 internals: {:.1}% of demand writes served by the LR part, \
             {} HR->LR migrations, {} LR refreshes, {} buffer overflows",
            s.lr_write_utilization() * 100.0,
            s.migrations_to_lr,
            s.refreshes,
            tp.buffer_overflows()
        );
    }
    Ok(())
}
