//! WWS inspector: run a workload on the two-part L2 and dump everything
//! the architecture's internal machinery did — migrations, demotions,
//! refreshes, expiries, swap-buffer pressure, search statistics and the
//! energy ledger. Useful for understanding *why* a workload wins or loses
//! on the two-part design.
//!
//! ```text
//! cargo run --release --example wws_inspector [workload] [scale]
//! ```

use std::error::Error;

use sttgpu::experiments::configs::{gpu_config, L2Choice};
use sttgpu::sim::Gpu;
use sttgpu::workloads::suite;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("kmeans");
    let scale: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0.5);

    let workload = suite::by_name(name)
        .ok_or_else(|| format!("unknown workload {name:?}; try {:?}", suite::names()))?;
    let workload = suite::scaled(&workload, scale);

    let mut gpu = Gpu::new(gpu_config(L2Choice::TwoPartC1));
    let metrics = gpu.run_workload(&workload, 20_000_000);
    let tp = gpu.llc().as_two_part().expect("C1 is two-part");
    let s = tp.stats();

    println!("== {name} on C1 (192KB 2-way LR + 1344KB 7-way HR) ==");
    println!(
        "run: {} cycles, IPC {:.1}, L2 hit rate {:.1}%",
        metrics.cycles,
        metrics.ipc(),
        metrics.l2.hit_rate() * 100.0
    );

    println!("\n-- hit breakdown --");
    println!(
        "  LR read hits   {:>9}    LR write hits {:>9}",
        s.lr_read_hits, s.lr_write_hits
    );
    println!(
        "  HR read hits   {:>9}    HR write hits {:>9}",
        s.hr_read_hits, s.hr_write_hits
    );
    println!(
        "  read misses    {:>9}    write misses  {:>9}",
        s.read_misses, s.write_misses
    );
    println!(
        "  sequential search resolved {:.1}% of hits on the second probe",
        if s.lr_read_hits + s.hr_read_hits + s.lr_write_hits + s.hr_write_hits == 0 {
            0.0
        } else {
            100.0 * s.second_search_hits as f64
                / (s.lr_read_hits + s.hr_read_hits + s.lr_write_hits + s.hr_write_hits) as f64
        }
    );

    println!("\n-- WWS machinery --");
    println!(
        "  LR serves {:.1}% of demand writes ({} of {})",
        s.lr_write_utilization() * 100.0,
        s.demand_writes_lr,
        s.demand_writes()
    );
    println!(
        "  migrations HR->LR {:>8}    demotions LR->HR {:>8}",
        s.migrations_to_lr, s.demotions_to_hr
    );
    println!(
        "  fills: {} to LR (dirty), {} to HR (clean)",
        s.fills_to_lr, s.fills_to_hr
    );
    let (hr_lr_peak, lr_hr_peak) = tp.buffer_peaks();
    println!(
        "  swap buffers: peak occupancy {hr_lr_peak}/{lr_hr_peak} of {} blocks, {} overflows \
         ({} forced write-backs)",
        tp.config().buffer_blocks,
        tp.buffer_overflows(),
        s.overflow_writebacks
    );

    println!("\n-- retention machinery --");
    println!(
        "  LR refreshes {:>8}    LR expiries {:>4} (must be 0)    HR expiries {:>6}",
        s.refreshes, s.lr_expirations, s.hr_expirations
    );
    let h = tp.lr_rewrite_intervals();
    if !h.is_empty() {
        println!(
            "  LR rewrite intervals: {:.0}% <=1us, {:.0}% <=5us, {:.0}% <=10us ({} samples)",
            h.fraction(0) * 100.0,
            h.cumulative_fraction_at(5_000) * 100.0,
            h.cumulative_fraction_at(10_000) * 100.0,
            h.total()
        );
    }

    println!("\n-- energy ledger --");
    print!("{}", metrics.l2_energy);
    println!(
        "  => dynamic {:.1} mW, total {:.1} mW over {} us",
        metrics.l2_dynamic_power_mw(),
        metrics.l2_total_power_mw(),
        metrics.elapsed_ns / 1_000
    );
    Ok(())
}
