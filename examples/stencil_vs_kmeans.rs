//! Contrast an **even writer** (stencil) with a **concentrated writer**
//! (kmeans) — the §4 characterisation that motivates the two-part L2.
//!
//! Stencil spreads writes uniformly over a large output grid, while
//! kmeans hammers a tiny centroid array. The example reports, for both:
//! inter/intra-set write variation (Fig. 3's metric), the LR part's share
//! of writes, and the rewrite-interval distribution (Fig. 6's metric).
//!
//! ```text
//! cargo run --release --example stencil_vs_kmeans [scale]
//! ```

use std::error::Error;

use sttgpu::core::LlcModel;
use sttgpu::experiments::configs::{gpu_config, L2Choice};
use sttgpu::sim::Gpu;
use sttgpu::stats::WriteVariation;
use sttgpu::workloads::suite;

fn main() -> Result<(), Box<dyn Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.5);

    for name in ["stencil", "kmeans"] {
        let workload = suite::scaled(&suite::by_name(name).expect("suite workload"), scale);

        // Write variation on the baseline L2 (Fig. 3 methodology).
        let mut base = Gpu::new(gpu_config(L2Choice::SramBaseline));
        base.run_workload(&workload, 20_000_000);
        let wv = WriteVariation::from_counts(&base.llc().write_count_matrix());

        // WWS capture on the two-part C1 L2.
        let mut c1 = Gpu::new(gpu_config(L2Choice::TwoPartC1));
        c1.run_workload(&workload, 20_000_000);
        let tp = c1.llc().as_two_part().expect("C1 is two-part");
        let stats = tp.stats();
        let hist = tp.lr_rewrite_intervals();

        println!("== {name} ==");
        println!(
            "  write variation: inter-set {:.0}%, intra-set {:.0}%",
            wv.inter_set * 100.0,
            wv.intra_set * 100.0
        );
        println!(
            "  LR share of demand writes: {:.1}%  (migrations {}, demotions {})",
            stats.lr_write_utilization() * 100.0,
            stats.migrations_to_lr,
            stats.demotions_to_hr
        );
        println!(
            "  rewrite intervals: {:.0}% <=1us, {:.0}% <=10us, {:.0}% >1ms (of {})",
            hist.fraction(0) * 100.0,
            hist.cumulative_fraction_at(10_000) * 100.0,
            (1.0 - hist.cumulative_fraction_at(1_000_000)) * 100.0,
            hist.total()
        );
        println!();
    }
    println!(
        "The concentrated writer shows far higher write variation and sub-microsecond\n\
         rewrites — exactly the temporal write working set the LR partition captures."
    );
    Ok(())
}
